// Package sz implements a pure-Go error-bounded lossy compressor modelled on
// the SZ compressor (Di & Cappello, IPDPS'16; Tao et al., IPDPS'17; Liang et
// al., Big Data'18) that the paper uses as its primary back end.
//
// The pipeline mirrors SZ's four stages:
//
//  1. blockwise data prediction with a hybrid predictor: a one-layer Lorenzo
//     predictor (operating on previously reconstructed values) or a
//     block-local linear regression, selected per block;
//  2. linear-scaling quantization of the prediction residual under an
//     absolute error bound;
//  3. customized Huffman encoding of the quantization codes;
//  4. a dictionary-encoder stage (DEFLATE via compress/flate, standing in
//     for Gzip/Zstd) over the Huffman bytes and literals.
//
// Because the Lorenzo predictor consumes *reconstructed* values and the
// dictionary stage operates on the Huffman output, the achieved compression
// ratio is not a monotonic function of the error bound — the behaviour that
// motivates FRaZ's global (rather than bisection) search (paper Fig. 3).
package sz

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"fraz/internal/grid"
	"fraz/internal/huffman"
	"fraz/internal/pool"
	"fraz/internal/quantize"
)

// magic32 and magic64 identify SZ-Go compressed streams of float32 and
// float64 data respectively. The element width is part of the magic, so a
// stream can never be reinterpreted at the wrong precision — and float32
// streams keep the exact bytes earlier builds wrote.
const (
	magic32 = 0x535A4731 // "SZG1"
	magic64 = 0x535A4732 // "SZG2"
)

// magicFor returns the stream magic for element type T.
func magicFor[T grid.Float]() uint32 {
	if grid.ElemSize[T]() == 4 {
		return magic32
	}
	return magic64
}

// unpredictable is the quantization-code marker for values stored verbatim.
const unpredictable = int32(1 << 30)

// Predictor selectors stored per block.
const (
	predLorenzo = 0
	predRegress = 1
)

// Options configures compression.
type Options struct {
	// ErrorBound is the absolute error bound (must be > 0).
	ErrorBound float64
	// BlockSize is the block edge length; 0 selects the SZ default
	// (6 for 3-D, 12 for 2-D, 128 for 1-D).
	BlockSize int
	// Intervals is the number of linear-scaling quantization intervals;
	// 0 selects the SZ default of 65536.
	Intervals int
	// DisableRegression forces the Lorenzo predictor everywhere. Used by
	// ablation benchmarks.
	DisableRegression bool
	// DisableDictionary skips the DEFLATE stage. Used by ablation benchmarks.
	DisableDictionary bool
}

func (o *Options) withDefaults(ndims int) Options {
	out := *o
	if out.BlockSize == 0 {
		switch ndims {
		case 1:
			out.BlockSize = 128
		case 2:
			out.BlockSize = 12
		default:
			out.BlockSize = 6
		}
	}
	if out.Intervals == 0 {
		out.Intervals = quantize.DefaultIntervals
	}
	return out
}

// ErrInvalidInput is returned when the data or options are malformed.
var ErrInvalidInput = errors.New("sz: invalid input")

// ErrCorrupt is returned by Decompress for unparsable streams.
var ErrCorrupt = errors.New("sz: corrupt stream")

// Compress compresses data of the given shape under the options' absolute
// error bound and returns the compressed byte stream, which is
// self-describing (Decompress needs no side information).
func Compress[T grid.Float](data []T, shape grid.Dims, opts Options) ([]byte, error) {
	if err := shape.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrInvalidInput, err)
	}
	if len(data) != shape.Len() {
		return nil, fmt.Errorf("%w: data length %d does not match shape %v", ErrInvalidInput, len(data), shape)
	}
	o := opts.withDefaults(shape.NDims())
	q, err := quantize.NewWithIntervals(o.ErrorBound, o.Intervals)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrInvalidInput, err)
	}

	// recon and codes are compression-internal scratch: recon is only read at
	// offsets already reconstructed (block-major row-major order guarantees
	// every Lorenzo neighbour is written first), and exactly one code is
	// emitted per point, so the pooled capacity is never exceeded.
	blocks := shape.Blocks(o.BlockSize)
	enc := &encoder[T]{
		q:        q,
		bound:    o.ErrorBound,
		data:     data,
		recon:    getFloats[T](len(data)),
		codes:    pool.GetInt32(len(data))[:0],
		literals: make([]T, 0),
	}
	defer func() {
		putFloats(enc.recon)
		pool.PutInt32(enc.codes)
	}()
	blockMeta := make([]byte, 0, len(blocks)*17)

	strides := shape.Strides()
	for _, b := range blocks {
		useRegress := false
		var coeffs [4]float64
		if !o.DisableRegression && b.Len() >= 8 {
			coeffs = fitRegression(data, shape, strides, b)
			if regressionBeatsLorenzo(data, shape, strides, b, coeffs) {
				useRegress = true
			}
		}
		if useRegress {
			blockMeta = append(blockMeta, predRegress)
			var tmp [8]byte
			for _, c := range coeffs {
				binary.LittleEndian.PutUint64(tmp[:], math.Float64bits(c))
				blockMeta = append(blockMeta, tmp[:]...)
			}
			enc.regressBlock(strides, b, coeffs)
		} else {
			blockMeta = append(blockMeta, predLorenzo)
			enc.lorenzoBlock(strides, b)
		}
	}
	literals := enc.literals

	huffBytes, err := huffman.Encode(enc.codes)
	if err != nil {
		return nil, fmt.Errorf("sz: huffman stage: %w", err)
	}

	// Assemble the uncompressed container, then run the dictionary stage.
	var payload bytes.Buffer
	writeUint32(&payload, uint32(len(blockMeta)))
	payload.Write(blockMeta)
	writeUint32(&payload, uint32(len(huffBytes)))
	payload.Write(huffBytes)
	writeUint32(&payload, uint32(len(literals)))
	writeLiterals(&payload, literals)

	body := payload.Bytes()
	dictFlag := byte(0)
	if !o.DisableDictionary {
		var comp bytes.Buffer
		fw, err := flate.NewWriter(&comp, flate.BestSpeed)
		if err != nil {
			return nil, fmt.Errorf("sz: dictionary stage: %w", err)
		}
		if _, err := fw.Write(body); err != nil {
			return nil, fmt.Errorf("sz: dictionary stage: %w", err)
		}
		if err := fw.Close(); err != nil {
			return nil, fmt.Errorf("sz: dictionary stage: %w", err)
		}
		if comp.Len() < len(body) {
			body = comp.Bytes()
			dictFlag = 1
		}
	}

	var out bytes.Buffer
	writeUint32(&out, magicFor[T]())
	out.WriteByte(dictFlag)
	out.WriteByte(byte(shape.NDims()))
	writeUint64(&out, math.Float64bits(o.ErrorBound))
	writeUint32(&out, uint32(o.BlockSize))
	writeUint32(&out, uint32(o.Intervals))
	for _, d := range shape {
		writeUint32(&out, uint32(d))
	}
	out.Write(body)
	return out.Bytes(), nil
}

// Decompress reconstructs the data from a stream produced by Compress. The
// shape argument must match the shape used at compression time; it is
// validated against the header.
func Decompress[T grid.Float](buf []byte, shape grid.Dims) ([]T, error) {
	hdr, body, err := parseHeader(buf)
	if err != nil {
		return nil, err
	}
	if hdr.elemSize != grid.ElemSize[T]() {
		return nil, fmt.Errorf("%w: stream holds %d-byte elements, caller expects %d-byte", ErrCorrupt, hdr.elemSize, grid.ElemSize[T]())
	}
	if shape != nil && !hdr.shape.Equal(shape) {
		return nil, fmt.Errorf("%w: shape mismatch: stream has %v, caller expects %v", ErrCorrupt, hdr.shape, shape)
	}
	return decompressBody[T](hdr, body)
}

// DecompressHeaderShape extracts the shape stored in a compressed stream.
func DecompressHeaderShape(buf []byte) (grid.Dims, error) {
	hdr, _, err := parseHeader(buf)
	if err != nil {
		return nil, err
	}
	return hdr.shape, nil
}

type header struct {
	dictFlag   byte
	elemSize   int
	errorBound float64
	blockSize  int
	intervals  int
	shape      grid.Dims
}

func parseHeader(buf []byte) (header, []byte, error) {
	var h header
	if len(buf) < 4+1+1+8+4+4 {
		return h, nil, ErrCorrupt
	}
	switch binary.LittleEndian.Uint32(buf[0:4]) {
	case magic32:
		h.elemSize = 4
	case magic64:
		h.elemSize = 8
	default:
		return h, nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	h.dictFlag = buf[4]
	ndims := int(buf[5])
	if ndims < 1 || ndims > 4 {
		return h, nil, fmt.Errorf("%w: bad rank %d", ErrCorrupt, ndims)
	}
	h.errorBound = math.Float64frombits(binary.LittleEndian.Uint64(buf[6:14]))
	h.blockSize = int(binary.LittleEndian.Uint32(buf[14:18]))
	h.intervals = int(binary.LittleEndian.Uint32(buf[18:22]))
	pos := 22
	if len(buf) < pos+4*ndims {
		return h, nil, ErrCorrupt
	}
	h.shape = make(grid.Dims, ndims)
	for i := 0; i < ndims; i++ {
		h.shape[i] = int(binary.LittleEndian.Uint32(buf[pos : pos+4]))
		pos += 4
	}
	if err := h.shape.Validate(); err != nil {
		return h, nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return h, buf[pos:], nil
}

func decompressBody[T grid.Float](h header, body []byte) ([]T, error) {
	if h.dictFlag == 1 {
		fr := flate.NewReader(bytes.NewReader(body))
		raw, err := io.ReadAll(fr)
		if err != nil {
			return nil, fmt.Errorf("%w: inflate: %v", ErrCorrupt, err)
		}
		fr.Close()
		body = raw
	}
	rd := bytes.NewReader(body)
	blockMeta, err := readChunk(rd)
	if err != nil {
		return nil, err
	}
	defer pool.PutBytes(blockMeta)
	//frazlint:allow poolcheck -- readChunk gets-and-returns a pooled buffer; its error-path put misreads as releasing rd
	huffBytes, err := readChunk(rd)
	if err != nil {
		return nil, err
	}
	defer pool.PutBytes(huffBytes)
	numLit, err := readUint32(rd)
	if err != nil {
		return nil, err
	}
	literals, err := readLiterals[T](rd, int(numLit))
	if err != nil {
		return nil, err
	}
	defer putFloats(literals)

	codes, err := huffman.Decode(huffBytes)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	if len(codes) != h.shape.Len() {
		return nil, fmt.Errorf("%w: code count %d does not match shape %v", ErrCorrupt, len(codes), h.shape)
	}

	q, err := quantize.NewWithIntervals(h.errorBound, h.intervals)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}

	// The output comes from the element pool: the blocked open path recycles
	// block buffers after scattering them. Every element is written before a
	// successful return (the blocks tile the domain and each point is
	// assigned), so the pool's stale contents never leak.
	dec := &decoder[T]{
		q:        q,
		codes:    codes,
		literals: literals,
		recon:    getFloats[T](h.shape.Len()),
	}
	strides := h.shape.Strides()
	blocks := h.shape.Blocks(h.blockSize)

	metaPos := 0
	for _, b := range blocks {
		if metaPos >= len(blockMeta) {
			putFloats(dec.recon)
			return nil, fmt.Errorf("%w: truncated block metadata", ErrCorrupt)
		}
		sel := blockMeta[metaPos]
		metaPos++
		if sel == predRegress {
			if metaPos+32 > len(blockMeta) {
				putFloats(dec.recon)
				return nil, fmt.Errorf("%w: truncated regression coefficients", ErrCorrupt)
			}
			var coeffs [4]float64
			for i := 0; i < 4; i++ {
				coeffs[i] = math.Float64frombits(binary.LittleEndian.Uint64(blockMeta[metaPos : metaPos+8]))
				metaPos += 8
			}
			dec.regressBlock(strides, b, coeffs)
		} else if sel == predLorenzo {
			dec.lorenzoBlock(strides, b)
		} else {
			putFloats(dec.recon)
			return nil, fmt.Errorf("%w: unknown predictor selector %d", ErrCorrupt, sel)
		}
		if dec.err != nil {
			putFloats(dec.recon)
			return nil, dec.err
		}
	}
	pool.PutInt32(codes)
	return dec.recon, nil
}

// forEachBlockPoint visits every point of the block in row-major order,
// passing the flat offset and the block-local coordinates.
func forEachBlockPoint(shape grid.Dims, b grid.Block, fn func(off int, local []int)) {
	strides := shape.Strides()
	nd := shape.NDims()
	local := make([]int, nd)
	n := b.Len()
	for i := 0; i < n; i++ {
		off := 0
		for k := 0; k < nd; k++ {
			off += (b.Start[k] + local[k]) * strides[k]
		}
		fn(off, local)
		k := nd - 1
		for k >= 0 {
			local[k]++
			if local[k] < b.Size[k] {
				break
			}
			local[k] = 0
			k--
		}
	}
}

// fitRegression fits value ~ b0 + b1*i0 + b2*i1 + b3*i2 over the block's
// original data by least squares (normal equations on a small, well-
// conditioned system). Unused dimensions have zero coefficients.
func fitRegression[T grid.Float](data []T, shape grid.Dims, strides []int, b grid.Block) [4]float64 {
	nd := shape.NDims()
	// Design matrix columns: 1, i0, i1, i2 (block-local coordinates).
	var ata [4][4]float64
	var atb [4]float64
	forEachBlockPoint(shape, b, func(off int, local []int) {
		var row [4]float64
		row[0] = 1
		for k := 0; k < nd && k < 3; k++ {
			row[k+1] = float64(local[k])
		}
		v := float64(data[off])
		for r := 0; r < 4; r++ {
			for c := 0; c < 4; c++ {
				ata[r][c] += row[r] * row[c]
			}
			atb[r] += row[r] * v
		}
	})
	return solve4(ata, atb)
}

// solve4 solves a 4x4 symmetric positive semi-definite system by Gaussian
// elimination with partial pivoting. Singular directions get a zero
// coefficient.
func solve4(a [4][4]float64, b [4]float64) [4]float64 {
	const n = 4
	// Augment.
	var m [n][n + 1]float64
	for i := 0; i < n; i++ {
		copy(m[i][:n], a[i][:])
		m[i][n] = b[i]
	}
	for col := 0; col < n; col++ {
		// pivot
		p := col
		for r := col + 1; r < n; r++ {
			if math.Abs(m[r][col]) > math.Abs(m[p][col]) {
				p = r
			}
		}
		m[col], m[p] = m[p], m[col]
		if math.Abs(m[col][col]) < 1e-12 {
			continue
		}
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			f := m[r][col] / m[col][col]
			for c := col; c <= n; c++ {
				m[r][c] -= f * m[col][c]
			}
		}
	}
	var x [4]float64
	for i := 0; i < n; i++ {
		if math.Abs(m[i][i]) >= 1e-12 {
			x[i] = m[i][n] / m[i][i]
		}
	}
	return x
}

func predictRegression(coeffs [4]float64, local []int) float64 {
	pred := coeffs[0]
	for k := 0; k < len(local) && k < 3; k++ {
		pred += coeffs[k+1] * float64(local[k])
	}
	return pred
}

// regressionBeatsLorenzo estimates, on the original (not reconstructed)
// data, whether the regression predictor yields a lower absolute residual
// than the Lorenzo predictor over the block, mirroring SZ 2.x's sampling-
// based predictor selection.
func regressionBeatsLorenzo[T grid.Float](data []T, shape grid.Dims, strides []int, b grid.Block, coeffs [4]float64) bool {
	nd := shape.NDims()
	var errLorenzo, errRegress float64
	forEachBlockPoint(shape, b, func(off int, local []int) {
		v := float64(data[off])
		errRegress += math.Abs(v - predictRegression(coeffs, local))

		// Lorenzo estimate on original data (approximation used only for
		// selection, exactly as SZ does).
		var pred float64
		switch nd {
		case 1:
			if local[0] > 0 || b.Start[0] > 0 {
				pred = float64(data[off-1])
			}
		case 2:
			y := b.Start[0] + local[0]
			x := b.Start[1] + local[1]
			var a2, b2, c2 float64
			if x > 0 {
				a2 = float64(data[off-strides[1]])
			}
			if y > 0 {
				b2 = float64(data[off-strides[0]])
			}
			if x > 0 && y > 0 {
				c2 = float64(data[off-strides[0]-strides[1]])
			}
			pred = a2 + b2 - c2
		default:
			z := b.Start[0] + local[0]
			y := b.Start[1] + local[1]
			x := b.Start[2] + local[2]
			var fx, fy, fz, fxy, fxz, fyz, fxyz float64
			if x > 0 {
				fx = float64(data[off-strides[2]])
			}
			if y > 0 {
				fy = float64(data[off-strides[1]])
			}
			if z > 0 {
				fz = float64(data[off-strides[0]])
			}
			if x > 0 && y > 0 {
				fxy = float64(data[off-strides[2]-strides[1]])
			}
			if x > 0 && z > 0 {
				fxz = float64(data[off-strides[2]-strides[0]])
			}
			if y > 0 && z > 0 {
				fyz = float64(data[off-strides[1]-strides[0]])
			}
			if x > 0 && y > 0 && z > 0 {
				fxyz = float64(data[off-strides[2]-strides[1]-strides[0]])
			}
			pred = fx + fy + fz - fxy - fxz - fyz + fxyz
		}
		errLorenzo += math.Abs(v - pred)
	})
	return errRegress < errLorenzo
}

func writeUint32(w *bytes.Buffer, v uint32) {
	var tmp [4]byte
	binary.LittleEndian.PutUint32(tmp[:], v)
	w.Write(tmp[:])
}

func writeUint64(w *bytes.Buffer, v uint64) {
	var tmp [8]byte
	binary.LittleEndian.PutUint64(tmp[:], v)
	w.Write(tmp[:])
}

func readUint32(r *bytes.Reader) (uint32, error) {
	var tmp [4]byte
	if _, err := io.ReadFull(r, tmp[:]); err != nil {
		return 0, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return binary.LittleEndian.Uint32(tmp[:]), nil
}

// writeLiterals appends the unpredictable values' raw IEEE-754 bits: 4 bytes
// per element for float32 streams, 8 for float64.
func writeLiterals[T grid.Float](w *bytes.Buffer, literals []T) {
	if grid.ElemSize[T]() == 4 {
		for _, v := range literals {
			writeUint32(w, math.Float32bits(float32(v)))
		}
		return
	}
	for _, v := range literals {
		writeUint64(w, math.Float64bits(float64(v)))
	}
}

// readLiterals is the inverse of writeLiterals. The returned slice comes
// from the element pool; decompressBody recycles it after the block loop.
func readLiterals[T grid.Float](r *bytes.Reader, n int) ([]T, error) {
	out := getFloats[T](n)
	if grid.ElemSize[T]() == 4 {
		for i := range out {
			v, err := readUint32(r)
			if err != nil {
				putFloats(out)
				return nil, err
			}
			out[i] = T(math.Float32frombits(v))
		}
		return out, nil
	}
	for i := range out {
		v, err := readUint64(r)
		if err != nil {
			putFloats(out)
			return nil, err
		}
		out[i] = T(math.Float64frombits(v))
	}
	return out, nil
}

func readUint64(r *bytes.Reader) (uint64, error) {
	var tmp [8]byte
	if _, err := io.ReadFull(r, tmp[:]); err != nil {
		return 0, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return binary.LittleEndian.Uint64(tmp[:]), nil
}

func readChunk(r *bytes.Reader) ([]byte, error) {
	n, err := readUint32(r)
	if err != nil {
		return nil, err
	}
	if int(n) > r.Len() {
		return nil, fmt.Errorf("%w: chunk length %d exceeds remaining %d", ErrCorrupt, n, r.Len())
	}
	// Chunk buffers come from the byte pool; decompressBody recycles them
	// once parsed, so the blocked open path reuses them across blocks.
	buf := pool.GetBytes(int(n))
	if _, err := io.ReadFull(r, buf); err != nil {
		pool.PutBytes(buf)
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return buf, nil
}
