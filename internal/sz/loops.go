package sz

import (
	"fmt"
	"math"

	"fraz/internal/grid"
	"fraz/internal/pool"
	"fraz/internal/quantize"
)

// This file holds the quantization hot loops, restructured from the original
// per-point closure walk (odometer + stride sum + div/mod coordinate recovery
// for every element) into per-rank row kernels: a row is a contiguous run
// along the fastest axis, so within a row the flat offset advances by 1 and
// every slower-axis Lorenzo guard (y>0, z>0) is a row constant hoisted out of
// the inner loop. Only the first element of a domain-edge row (global x == 0)
// needs special handling, peeled off before the guard-free loop body.
//
// Bit-compatibility contract: every kernel evaluates the exact floating-point
// expressions of the original lorenzoPredictor/predictRegression walk, with
// identical association order, so streams and reconstructions are unchanged.
// The only deviation is dropping "+ 0.0" terms for absent neighbours, which
// can flip a prediction between -0.0 and +0.0 — invisible to the quantizer:
// v-pred, round(diff/2e), and pred+2e*code are identical for both zero signs.

// encoder carries the per-field compression state threaded through the row
// kernels: the quantizer, the original data, the running reconstruction the
// Lorenzo predictor reads, and the output code/literal streams.
type encoder[T grid.Float] struct {
	q        *quantize.Quantizer
	bound    float64
	data     []T
	recon    []T
	codes    []int32
	literals []T
}

// point quantizes one value against its prediction — the body of the original
// per-point closure, unchanged.
func (e *encoder[T]) point(off int, pred float64) {
	v := float64(e.data[off])
	code, rec, ok := e.q.Quantize(v, pred)
	if ok {
		// The decompressor stores reconstructions at the element type's
		// precision, so the bound must hold after the cast as well (a no-op
		// for float64 input).
		recT := T(rec)
		if math.Abs(float64(recT)-v) > e.bound {
			ok = false
		} else {
			e.codes = append(e.codes, code)
			e.recon[off] = recT
		}
	}
	if !ok {
		e.codes = append(e.codes, unpredictable)
		e.literals = append(e.literals, e.data[off])
		e.recon[off] = e.data[off]
	}
}

// lorenzoBlock encodes one block with the Lorenzo predictor, dispatching to
// the rank-specialized row kernels.
func (e *encoder[T]) lorenzoBlock(strides []int, b grid.Block) {
	switch len(b.Start) {
	case 1:
		e.lorenzoRow1(b.Start[0], b.Size[0], b.Start[0])
	case 2:
		sy := strides[0]
		for ly := 0; ly < b.Size[0]; ly++ {
			y := b.Start[0] + ly
			e.lorenzoRow2(y*sy+b.Start[1], b.Size[1], y, b.Start[1], sy)
		}
	case 3:
		sz, sy := strides[0], strides[1]
		for lz := 0; lz < b.Size[0]; lz++ {
			z := b.Start[0] + lz
			for ly := 0; ly < b.Size[1]; ly++ {
				y := b.Start[1] + ly
				e.lorenzoRow3(z*sz+y*sy+b.Start[2], b.Size[2], z, y, b.Start[2], sz, sy)
			}
		}
	default:
		// 4-D: previous element along the fastest axis, like the 1-D kernel.
		for l0 := 0; l0 < b.Size[0]; l0++ {
			for l1 := 0; l1 < b.Size[1]; l1++ {
				for l2 := 0; l2 < b.Size[2]; l2++ {
					base := (b.Start[0]+l0)*strides[0] + (b.Start[1]+l1)*strides[1] +
						(b.Start[2]+l2)*strides[2] + b.Start[3]
					e.lorenzoRow1(base, b.Size[3], b.Start[3])
				}
			}
		}
	}
}

func (e *encoder[T]) lorenzoRow1(base, n, x0 int) {
	off := base
	if x0 == 0 {
		e.point(off, 0)
		off++
		n--
	}
	r := e.recon
	for i := 0; i < n; i++ {
		e.point(off, float64(r[off-1]))
		off++
	}
}

func (e *encoder[T]) lorenzoRow2(base, n, y, x0, sy int) {
	off := base
	r := e.recon
	if x0 == 0 {
		var pred float64
		if y > 0 {
			pred = float64(r[off-sy])
		}
		e.point(off, pred)
		off++
		n--
	}
	if y > 0 {
		for i := 0; i < n; i++ {
			pred := float64(r[off-1]) + float64(r[off-sy]) - float64(r[off-sy-1])
			e.point(off, pred)
			off++
		}
	} else {
		for i := 0; i < n; i++ {
			e.point(off, float64(r[off-1]))
			off++
		}
	}
}

func (e *encoder[T]) lorenzoRow3(base, n, z, y, x0, sz, sy int) {
	off := base
	r := e.recon
	if x0 == 0 {
		var pred float64
		switch {
		case z > 0 && y > 0:
			pred = float64(r[off-sy]) + float64(r[off-sz]) - float64(r[off-sy-sz])
		case z > 0:
			pred = float64(r[off-sz])
		case y > 0:
			pred = float64(r[off-sy])
		}
		e.point(off, pred)
		off++
		n--
	}
	switch {
	case z > 0 && y > 0:
		for i := 0; i < n; i++ {
			fx := float64(r[off-1])
			fy := float64(r[off-sy])
			fz := float64(r[off-sz])
			fxy := float64(r[off-1-sy])
			fxz := float64(r[off-1-sz])
			fyz := float64(r[off-sy-sz])
			fxyz := float64(r[off-1-sy-sz])
			e.point(off, fx+fy+fz-fxy-fxz-fyz+fxyz)
			off++
		}
	case z > 0:
		for i := 0; i < n; i++ {
			pred := float64(r[off-1]) + float64(r[off-sz]) - float64(r[off-1-sz])
			e.point(off, pred)
			off++
		}
	case y > 0:
		for i := 0; i < n; i++ {
			pred := float64(r[off-1]) + float64(r[off-sy]) - float64(r[off-1-sy])
			e.point(off, pred)
			off++
		}
	default:
		for i := 0; i < n; i++ {
			e.point(off, float64(r[off-1]))
			off++
		}
	}
}

// regressBlock encodes one block with the regression predictor. Along a row
// only the fastest-axis coordinate varies, so the row-constant part of the
// prediction is accumulated once, in predictRegression's association order.
func (e *encoder[T]) regressBlock(strides []int, b grid.Block, coeffs [4]float64) {
	switch len(b.Start) {
	case 1:
		base := b.Start[0]
		for i := 0; i < b.Size[0]; i++ {
			e.point(base+i, coeffs[0]+coeffs[1]*float64(i))
		}
	case 2:
		for ly := 0; ly < b.Size[0]; ly++ {
			base := (b.Start[0]+ly)*strides[0] + b.Start[1]
			p0 := coeffs[0] + coeffs[1]*float64(ly)
			for i := 0; i < b.Size[1]; i++ {
				e.point(base+i, p0+coeffs[2]*float64(i))
			}
		}
	case 3:
		for lz := 0; lz < b.Size[0]; lz++ {
			pz := coeffs[0] + coeffs[1]*float64(lz)
			for ly := 0; ly < b.Size[1]; ly++ {
				base := (b.Start[0]+lz)*strides[0] + (b.Start[1]+ly)*strides[1] + b.Start[2]
				p0 := pz + coeffs[2]*float64(ly)
				for i := 0; i < b.Size[2]; i++ {
					e.point(base+i, p0+coeffs[3]*float64(i))
				}
			}
		}
	default:
		// 4-D: the model uses only the three slowest coordinates, so the
		// prediction is constant along a row.
		for l0 := 0; l0 < b.Size[0]; l0++ {
			p0 := coeffs[0] + coeffs[1]*float64(l0)
			for l1 := 0; l1 < b.Size[1]; l1++ {
				p1 := p0 + coeffs[2]*float64(l1)
				for l2 := 0; l2 < b.Size[2]; l2++ {
					p2 := p1 + coeffs[3]*float64(l2)
					base := (b.Start[0]+l0)*strides[0] + (b.Start[1]+l1)*strides[1] +
						(b.Start[2]+l2)*strides[2] + b.Start[3]
					for i := 0; i < b.Size[3]; i++ {
						e.point(base+i, p2)
					}
				}
			}
		}
	}
}

// decoder mirrors encoder for decompression: it consumes the code and literal
// streams in visit order and writes reconstructions.
type decoder[T grid.Float] struct {
	q        *quantize.Quantizer
	codes    []int32
	literals []T
	recon    []T
	codePos  int
	litPos   int
	err      error
}

func (d *decoder[T]) point(off int, pred float64) {
	if d.err != nil {
		return
	}
	code := d.codes[d.codePos]
	d.codePos++
	if code == unpredictable {
		if d.litPos >= len(d.literals) {
			d.err = fmt.Errorf("%w: literal stream exhausted", ErrCorrupt)
			return
		}
		d.recon[off] = d.literals[d.litPos]
		d.litPos++
		return
	}
	d.recon[off] = T(d.q.Dequantize(pred, code))
}

func (d *decoder[T]) lorenzoBlock(strides []int, b grid.Block) {
	switch len(b.Start) {
	case 1:
		d.lorenzoRow1(b.Start[0], b.Size[0], b.Start[0])
	case 2:
		sy := strides[0]
		for ly := 0; ly < b.Size[0]; ly++ {
			y := b.Start[0] + ly
			d.lorenzoRow2(y*sy+b.Start[1], b.Size[1], y, b.Start[1], sy)
		}
	case 3:
		sz, sy := strides[0], strides[1]
		for lz := 0; lz < b.Size[0]; lz++ {
			z := b.Start[0] + lz
			for ly := 0; ly < b.Size[1]; ly++ {
				y := b.Start[1] + ly
				d.lorenzoRow3(z*sz+y*sy+b.Start[2], b.Size[2], z, y, b.Start[2], sz, sy)
			}
		}
	default:
		for l0 := 0; l0 < b.Size[0]; l0++ {
			for l1 := 0; l1 < b.Size[1]; l1++ {
				for l2 := 0; l2 < b.Size[2]; l2++ {
					base := (b.Start[0]+l0)*strides[0] + (b.Start[1]+l1)*strides[1] +
						(b.Start[2]+l2)*strides[2] + b.Start[3]
					d.lorenzoRow1(base, b.Size[3], b.Start[3])
				}
			}
		}
	}
}

func (d *decoder[T]) lorenzoRow1(base, n, x0 int) {
	off := base
	if x0 == 0 {
		d.point(off, 0)
		off++
		n--
	}
	r := d.recon
	for i := 0; i < n; i++ {
		d.point(off, float64(r[off-1]))
		off++
	}
}

func (d *decoder[T]) lorenzoRow2(base, n, y, x0, sy int) {
	off := base
	r := d.recon
	if x0 == 0 {
		var pred float64
		if y > 0 {
			pred = float64(r[off-sy])
		}
		d.point(off, pred)
		off++
		n--
	}
	if y > 0 {
		for i := 0; i < n; i++ {
			pred := float64(r[off-1]) + float64(r[off-sy]) - float64(r[off-sy-1])
			d.point(off, pred)
			off++
		}
	} else {
		for i := 0; i < n; i++ {
			d.point(off, float64(r[off-1]))
			off++
		}
	}
}

func (d *decoder[T]) lorenzoRow3(base, n, z, y, x0, sz, sy int) {
	off := base
	r := d.recon
	if x0 == 0 {
		var pred float64
		switch {
		case z > 0 && y > 0:
			pred = float64(r[off-sy]) + float64(r[off-sz]) - float64(r[off-sy-sz])
		case z > 0:
			pred = float64(r[off-sz])
		case y > 0:
			pred = float64(r[off-sy])
		}
		d.point(off, pred)
		off++
		n--
	}
	switch {
	case z > 0 && y > 0:
		for i := 0; i < n; i++ {
			fx := float64(r[off-1])
			fy := float64(r[off-sy])
			fz := float64(r[off-sz])
			fxy := float64(r[off-1-sy])
			fxz := float64(r[off-1-sz])
			fyz := float64(r[off-sy-sz])
			fxyz := float64(r[off-1-sy-sz])
			d.point(off, fx+fy+fz-fxy-fxz-fyz+fxyz)
			off++
		}
	case z > 0:
		for i := 0; i < n; i++ {
			pred := float64(r[off-1]) + float64(r[off-sz]) - float64(r[off-1-sz])
			d.point(off, pred)
			off++
		}
	case y > 0:
		for i := 0; i < n; i++ {
			pred := float64(r[off-1]) + float64(r[off-sy]) - float64(r[off-1-sy])
			d.point(off, pred)
			off++
		}
	default:
		for i := 0; i < n; i++ {
			d.point(off, float64(r[off-1]))
			off++
		}
	}
}

func (d *decoder[T]) regressBlock(strides []int, b grid.Block, coeffs [4]float64) {
	switch len(b.Start) {
	case 1:
		base := b.Start[0]
		for i := 0; i < b.Size[0]; i++ {
			d.point(base+i, coeffs[0]+coeffs[1]*float64(i))
		}
	case 2:
		for ly := 0; ly < b.Size[0]; ly++ {
			base := (b.Start[0]+ly)*strides[0] + b.Start[1]
			p0 := coeffs[0] + coeffs[1]*float64(ly)
			for i := 0; i < b.Size[1]; i++ {
				d.point(base+i, p0+coeffs[2]*float64(i))
			}
		}
	case 3:
		for lz := 0; lz < b.Size[0]; lz++ {
			pz := coeffs[0] + coeffs[1]*float64(lz)
			for ly := 0; ly < b.Size[1]; ly++ {
				base := (b.Start[0]+lz)*strides[0] + (b.Start[1]+ly)*strides[1] + b.Start[2]
				p0 := pz + coeffs[2]*float64(ly)
				for i := 0; i < b.Size[2]; i++ {
					d.point(base+i, p0+coeffs[3]*float64(i))
				}
			}
		}
	default:
		for l0 := 0; l0 < b.Size[0]; l0++ {
			p0 := coeffs[0] + coeffs[1]*float64(l0)
			for l1 := 0; l1 < b.Size[1]; l1++ {
				p1 := p0 + coeffs[2]*float64(l1)
				for l2 := 0; l2 < b.Size[2]; l2++ {
					p2 := p1 + coeffs[3]*float64(l2)
					base := (b.Start[0]+l0)*strides[0] + (b.Start[1]+l1)*strides[1] +
						(b.Start[2]+l2)*strides[2] + b.Start[3]
					for i := 0; i < b.Size[3]; i++ {
						d.point(base+i, p2)
					}
				}
			}
		}
	}
}

// getFloats and putFloats bridge the generic element type to the pool's
// concrete free lists.
func getFloats[T grid.Float](n int) []T {
	if grid.ElemSize[T]() == 4 {
		return any(pool.GetFloat32(n)).([]T)
	}
	return any(pool.GetFloat64(n)).([]T)
}

func putFloats[T grid.Float](s []T) {
	switch v := any(s).(type) {
	case []float32:
		pool.PutFloat32(v)
	case []float64:
		pool.PutFloat64(v)
	}
}
