package parallel

import (
	"context"
	"runtime"
	"sync/atomic"
	"testing"
)

// measureAllocBytes reports the heap bytes one ForEach call over n items
// allocates, averaged over a few runs with the worker count pinned.
func measureAllocBytes(t *testing.T, n int) uint64 {
	t.Helper()
	const runs = 10
	var sink atomic.Int64
	fn := func(ctx context.Context, idx int) error {
		sink.Add(int64(idx))
		return nil
	}
	// Warm the worker-scratch pool so the measurement sees steady state.
	if err := ForEach(context.Background(), n, 4, fn); err != nil {
		t.Fatal(err)
	}
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	for i := 0; i < runs; i++ {
		if err := ForEach(context.Background(), n, 4, fn); err != nil {
			t.Fatal(err)
		}
	}
	runtime.ReadMemStats(&after)
	return (after.TotalAlloc - before.TotalAlloc) / runs
}

// TestForEachAllocsIndependentOfN pins the fix for the per-call result
// buffer: error bookkeeping lives in pooled workers-sized scratch, so the
// bytes allocated per call must not scale with the item count (the old
// n-buffered error channel allocated 8n bytes before the first task ran).
func TestForEachAllocsIndependentOfN(t *testing.T) {
	small := measureAllocBytes(t, 8)
	large := measureAllocBytes(t, 100_000)
	// Channel buffers of 100k errors would show up as ~800 KiB; genuinely
	// n-independent bookkeeping stays within noise. Allow generous slack for
	// scheduler/pool variance.
	if large > small+16*1024 {
		t.Errorf("ForEach allocates %d bytes/call at n=100000 vs %d at n=8; bookkeeping scales with n", large, small)
	}
}

func BenchmarkForEach(b *testing.B) {
	b.ReportAllocs()
	var sink atomic.Int64
	fn := func(ctx context.Context, idx int) error {
		sink.Add(int64(idx))
		return nil
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := ForEach(context.Background(), 1024, 4, fn); err != nil {
			b.Fatal(err)
		}
	}
}
