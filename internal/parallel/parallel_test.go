package parallel

import (
	"context"
	"errors"
	"math"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"
)

func TestSplitRegionsBasic(t *testing.T) {
	regions, err := SplitRegions(0, 12, 12, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if len(regions) != 12 {
		t.Fatalf("expected 12 regions, got %d", len(regions))
	}
	if regions[0].Lower != 0 {
		t.Errorf("first region should start at the range lower bound, got %v", regions[0].Lower)
	}
	if regions[11].Upper != 12 {
		t.Errorf("last region should end at the range upper bound, got %v", regions[11].Upper)
	}
	// Adjacent regions must overlap.
	for i := 1; i < len(regions); i++ {
		if !(regions[i].Lower < regions[i-1].Upper) {
			t.Errorf("regions %d and %d do not overlap: %+v %+v", i-1, i, regions[i-1], regions[i])
		}
	}
}

func TestSplitRegionsCoverage(t *testing.T) {
	regions, err := SplitRegions(1e-6, 0.5, 7, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	// Every point of the range must be inside at least one region.
	for i := 0; i <= 1000; i++ {
		x := 1e-6 + (0.5-1e-6)*float64(i)/1000
		covered := false
		for _, r := range regions {
			if x >= r.Lower && x <= r.Upper {
				covered = true
				break
			}
		}
		if !covered {
			t.Fatalf("point %v not covered by any region", x)
		}
	}
}

func TestSplitRegionsDefaultsAndClamps(t *testing.T) {
	regions, err := SplitRegions(0, 1, 0, -1)
	if err != nil {
		t.Fatal(err)
	}
	if len(regions) != DefaultRegions {
		t.Errorf("k<=0 should fall back to DefaultRegions, got %d", len(regions))
	}
	regions, err = SplitRegions(0, 1, 3, 5.0)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range regions {
		if r.Lower < 0 || r.Upper > 1 {
			t.Errorf("region %+v escapes the range", r)
		}
	}
	if _, err := SplitRegions(1, 1, 4, 0.1); err == nil {
		t.Errorf("empty range should fail")
	}
	if _, err := SplitRegions(2, 1, 4, 0.1); err == nil {
		t.Errorf("inverted range should fail")
	}
}

func TestPropertySplitRegionsOrderedAndBounded(t *testing.T) {
	f := func(loSeed, spanSeed uint16, kSeed, ovSeed uint8) bool {
		lo := float64(loSeed) / 100
		span := float64(spanSeed)/100 + 0.001
		k := int(kSeed%20) + 1
		overlap := float64(ovSeed%100) / 100
		regions, err := SplitRegions(lo, lo+span, k, overlap)
		if err != nil || len(regions) != k {
			return false
		}
		for i, r := range regions {
			if !(r.Lower < r.Upper) {
				return false
			}
			if r.Lower < lo-1e-12 || r.Upper > lo+span+1e-12 {
				return false
			}
			if i > 0 && r.Lower < regions[i-1].Lower {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestForEachRunsAll(t *testing.T) {
	var count int64
	err := ForEach(context.Background(), 100, 8, func(ctx context.Context, idx int) error {
		atomic.AddInt64(&count, 1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != 100 {
		t.Errorf("ran %d tasks, want 100", count)
	}
}

func TestForEachPropagatesError(t *testing.T) {
	sentinel := errors.New("boom")
	err := ForEach(context.Background(), 10, 2, func(ctx context.Context, idx int) error {
		if idx == 3 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Errorf("expected sentinel error, got %v", err)
	}
}

func TestForEachZeroItems(t *testing.T) {
	if err := ForEach(context.Background(), 0, 4, nil); err != nil {
		t.Errorf("zero items should be a no-op, got %v", err)
	}
}

func TestForEachCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := ForEach(ctx, 50, 4, func(ctx context.Context, idx int) error { return nil })
	if err == nil {
		t.Errorf("cancelled context should surface an error")
	}
}

// TestForEachKeepsWorkerErrorOnLateCancellation pins the other exit path:
// even when all indices were fed before the cancellation was observed (the
// normal-completion drain), a worker's real failure must outrank the
// context errors other workers echo for the indices they skipped.
func TestForEachKeepsWorkerErrorOnLateCancellation(t *testing.T) {
	sentinel := errors.New("real failure")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cancelled := make(chan struct{})
	err := ForEach(ctx, 3, 2, func(ctx context.Context, idx int) error {
		switch idx {
		case 0:
			// Fail only after the cancellation, so any context errors the
			// other worker pushed for remaining indices precede the real
			// failure in the error channel.
			<-cancelled
			return sentinel
		case 1:
			cancel()
			close(cancelled)
			return nil
		default:
			return nil
		}
	})
	if !errors.Is(err, sentinel) {
		t.Errorf("err = %v, want the worker's error to outrank cancellation noise", err)
	}
}

// TestForEachKeepsWorkerErrorOnCancellation pins the early-cancellation
// path: when a task fails and the context is cancelled before all work was
// fed, the real failure must still be returned, not swallowed in favour of
// the generic context error.
func TestForEachKeepsWorkerErrorOnCancellation(t *testing.T) {
	sentinel := errors.New("real failure")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	err := ForEach(ctx, 50, 1, func(ctx context.Context, idx int) error {
		if idx == 0 {
			cancel()
			// Hold the single worker long enough that the feeder observes
			// the cancellation (rather than handing out the next index)
			// and takes the early-return path.
			time.Sleep(50 * time.Millisecond)
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Errorf("err = %v, want the worker's error to survive cancellation", err)
	}
}

func TestForEachDefaultWorkers(t *testing.T) {
	var count int64
	err := ForEach(context.Background(), 5, 0, func(ctx context.Context, idx int) error {
		atomic.AddInt64(&count, 1)
		return nil
	})
	if err != nil || count != 5 {
		t.Errorf("default worker count run failed: err=%v count=%d", err, count)
	}
}

func TestRunUntilAcceptableCancelsRemaining(t *testing.T) {
	// Task 2 succeeds quickly; slow tasks should be cancelled or skipped, so
	// the total wall time stays far below the sum of task durations.
	n := 8
	tasks := make([]Task[int], n)
	var started int64
	for i := 0; i < n; i++ {
		i := i
		tasks[i] = func(ctx context.Context) (int, bool, error) {
			atomic.AddInt64(&started, 1)
			if i == 2 {
				return 42, true, nil
			}
			select {
			case <-ctx.Done():
				return 0, false, ctx.Err()
			case <-time.After(2 * time.Second):
				return i, false, nil
			}
		}
	}
	start := time.Now()
	outcomes := RunUntilAcceptable(context.Background(), 4, tasks)
	elapsed := time.Since(start)
	if elapsed > time.Second {
		t.Errorf("early termination too slow: %v", elapsed)
	}
	found := false
	for _, o := range outcomes {
		if o.Acceptable && o.Err == nil {
			if o.Value != 42 || o.Index != 2 {
				t.Errorf("unexpected acceptable outcome %+v", o)
			}
			found = true
		}
	}
	if !found {
		t.Errorf("no acceptable outcome reported")
	}
}

func TestRunUntilAcceptableAllComplete(t *testing.T) {
	tasks := make([]Task[float64], 5)
	for i := range tasks {
		i := i
		tasks[i] = func(ctx context.Context) (float64, bool, error) {
			return float64(i) * 1.5, false, nil
		}
	}
	outcomes := RunUntilAcceptable(context.Background(), 2, tasks)
	if len(outcomes) != 5 {
		t.Fatalf("expected 5 outcomes")
	}
	for i, o := range outcomes {
		if !o.Started || o.Acceptable || o.Err != nil {
			t.Errorf("outcome %d unexpected: %+v", i, o)
		}
		if math.Abs(o.Value-float64(i)*1.5) > 1e-12 {
			t.Errorf("outcome %d value %v", i, o.Value)
		}
	}
}

func TestRunUntilAcceptableReportsErrors(t *testing.T) {
	sentinel := errors.New("task failed")
	tasks := []Task[int]{
		func(ctx context.Context) (int, bool, error) { return 0, false, sentinel },
		func(ctx context.Context) (int, bool, error) { return 7, true, nil },
	}
	outcomes := RunUntilAcceptable(context.Background(), 1, tasks)
	if !errors.Is(outcomes[0].Err, sentinel) {
		t.Errorf("expected first task error to be reported, got %+v", outcomes[0])
	}
	if !outcomes[1].Acceptable {
		t.Errorf("second task should still be able to succeed")
	}
}

func TestRunUntilAcceptableEmpty(t *testing.T) {
	outcomes := RunUntilAcceptable[int](context.Background(), 4, nil)
	if len(outcomes) != 0 {
		t.Errorf("empty task list should produce no outcomes")
	}
}

func TestRunUntilAcceptableParentCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	tasks := []Task[int]{
		func(ctx context.Context) (int, bool, error) {
			if ctx.Err() != nil {
				return 0, false, ctx.Err()
			}
			return 1, false, nil
		},
	}
	outcomes := RunUntilAcceptable(ctx, 1, tasks)
	if len(outcomes) != 1 {
		t.Fatalf("expected one outcome")
	}
	// With an already-cancelled parent the task is either skipped or
	// observes the cancellation.
	if outcomes[0].Started && outcomes[0].Err == nil {
		t.Errorf("task under cancelled parent should not report success: %+v", outcomes[0])
	}
}
