// Package parallel provides the task-parallel building blocks of FRaZ's
// orchestrator: splitting an error-bound search range into slightly
// overlapping regions (paper Fig. 5), running a set of tasks with bounded
// concurrency, and cancelling outstanding tasks as soon as one of them
// produces an acceptable result (paper Algorithm 2, lines 7–14).
//
// The paper's implementation distributes these tasks over MPI ranks; here
// they are goroutines coordinated by contexts, which expresses the same task
// graph — including the early-termination semantics — on a single node.
package parallel

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
)

// Region is a sub-interval of the error-bound search range.
type Region struct {
	Lower, Upper float64
}

// DefaultRegions is the number of error-bound regions used per field and
// time-step when the caller does not specify one. The paper found 12 tasks
// per field/time-step to be the best efficiency/runtime trade-off (§V-C).
const DefaultRegions = 12

// DefaultOverlap is the fractional overlap between adjacent regions. The
// paper uses a small fixed percentage of the region width (10%) so that a
// target sitting exactly on a region border is still surrounded by
// stationary points usable for quadratic refinement.
const DefaultOverlap = 0.10

// ErrBadRange is returned when a search range is empty or inverted.
var ErrBadRange = errors.New("parallel: invalid range")

// SplitRegions divides [lo, hi] into k regions that overlap by the given
// fraction of the region width. The first and last regions are clipped to
// the original range, as in the paper's Fig. 5.
func SplitRegions(lo, hi float64, k int, overlap float64) ([]Region, error) {
	if !(lo < hi) {
		return nil, fmt.Errorf("%w: [%v, %v]", ErrBadRange, lo, hi)
	}
	if k <= 0 {
		k = DefaultRegions
	}
	if overlap < 0 {
		overlap = 0
	}
	if overlap > 0.9 {
		overlap = 0.9
	}
	width := (hi - lo) / float64(k)
	pad := width * overlap / 2
	regions := make([]Region, k)
	for i := 0; i < k; i++ {
		rlo := lo + float64(i)*width - pad
		rhi := lo + float64(i+1)*width + pad
		if rlo < lo {
			rlo = lo
		}
		if rhi > hi {
			rhi = hi
		}
		regions[i] = Region{Lower: rlo, Upper: rhi}
	}
	return regions, nil
}

// workerErr is one worker's error scratch: its first real failure and the
// first cancellation echo it saw, kept separately so the merge can rank
// real failures above the generic cancellation other workers report for the
// indices they skipped.
type workerErr struct {
	real      error
	cancelled error
	_         [4]uint64 // pad to a cache line so workers don't false-share
}

// workerScratch pools the per-call worker error slates. ForEach runs on the
// tuner's innermost loops (every blocked seal/open spins one up), so its
// bookkeeping must not grow with the input count n — errors accumulate into
// this fixed workers-sized scratch instead of a per-call n-sized channel.
var workerScratch = sync.Pool{
	New: func() any { return make([]workerErr, runtime.GOMAXPROCS(0)) },
}

// ForEach runs fn for every input index with at most workers concurrent
// goroutines, stopping early if the context is cancelled. It returns the
// first non-nil error (other tasks still run to completion of the ones
// already started).
func ForEach(ctx context.Context, n, workers int, fn func(ctx context.Context, idx int) error) error {
	if n <= 0 {
		return nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	errs := workerScratch.Get().([]workerErr)
	if len(errs) < workers {
		errs = make([]workerErr, workers)
	}
	for i := 0; i < workers; i++ {
		errs[i] = workerErr{}
	}
	idxCh := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(slot *workerErr) {
			defer wg.Done()
			for idx := range idxCh {
				err := ctx.Err()
				if err == nil {
					err = fn(ctx, idx)
				}
				slot.record(ctx, err)
			}
		}(&errs[w])
	}
	fed := true
	for i := 0; i < n && fed; i++ {
		select {
		case idxCh <- i:
		case <-ctx.Done():
			// Stop feeding work; the merge below prefers a worker's real
			// failure over the generic cancellation.
			fed = false
		}
	}
	close(idxCh)
	wg.Wait()
	err := mergeErrors(errs[:workers])
	workerScratch.Put(errs)
	if !fed && err == nil {
		return ctx.Err()
	}
	return err
}

// record files an error into the worker's slot, keeping the first real
// failure and the first cancellation echo.
func (s *workerErr) record(ctx context.Context, err error) {
	if err == nil {
		return
	}
	if cerr := ctx.Err(); cerr != nil && errors.Is(err, cerr) {
		if s.cancelled == nil {
			s.cancelled = err
		}
		return
	}
	if s.real == nil {
		s.real = err
	}
}

// mergeErrors combines the per-worker slates, ranking real failures above
// cancellation echoes: on either exit path a worker may have failed for a
// real reason before (or while) the context was cancelled, and that failure
// — not the generic cancellation — is what the caller needs.
func mergeErrors(errs []workerErr) error {
	var cancelled error
	for i := range errs {
		if errs[i].real != nil {
			return errs[i].real
		}
		if cancelled == nil {
			cancelled = errs[i].cancelled
		}
	}
	return cancelled
}

// TaskOutcome reports the result of one task run by RunUntilAcceptable.
type TaskOutcome[R any] struct {
	// Index identifies the task in the input slice.
	Index int
	// Value is the task's result (zero value when Err != nil).
	Value R
	// Acceptable is true when the task declared its result acceptable.
	Acceptable bool
	// Started is false when the task was cancelled before it began.
	Started bool
	// Err is the task's error, if any.
	Err error
}

// Task is a unit of work that reports whether its result satisfies the
// caller's acceptance criterion (for FRaZ: whether the achieved compression
// ratio falls inside the target band).
type Task[R any] func(ctx context.Context) (result R, acceptable bool, err error)

// RunUntilAcceptable runs the tasks with at most workers concurrent
// goroutines. As soon as any task reports an acceptable result, tasks that
// have not yet started are skipped and running tasks are signalled to stop
// through their context, mirroring Algorithm 2's cancellation of outstanding
// MPI tasks. Every task that started is reported in the returned slice,
// indexed like the input.
func RunUntilAcceptable[R any](ctx context.Context, workers int, tasks []Task[R]) []TaskOutcome[R] {
	n := len(tasks)
	outcomes := make([]TaskOutcome[R], n)
	for i := range outcomes {
		outcomes[i].Index = i
	}
	if n == 0 {
		return outcomes
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	var mu sync.Mutex
	accepted := false

	idxCh := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range idxCh {
				mu.Lock()
				skip := accepted || runCtx.Err() != nil
				mu.Unlock()
				if skip {
					continue
				}
				outcomes[idx].Started = true
				value, ok, err := tasks[idx](runCtx)
				outcomes[idx].Value = value
				outcomes[idx].Acceptable = ok
				outcomes[idx].Err = err
				if ok && err == nil {
					mu.Lock()
					accepted = true
					mu.Unlock()
					cancel()
				}
			}
		}()
	}
	for i := 0; i < n; i++ {
		idxCh <- i
	}
	close(idxCh)
	wg.Wait()
	return outcomes
}
