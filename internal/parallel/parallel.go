// Package parallel provides the task-parallel building blocks of FRaZ's
// orchestrator: splitting an error-bound search range into slightly
// overlapping regions (paper Fig. 5), running a set of tasks with bounded
// concurrency, and cancelling outstanding tasks as soon as one of them
// produces an acceptable result (paper Algorithm 2, lines 7–14).
//
// The paper's implementation distributes these tasks over MPI ranks; here
// they are goroutines coordinated by contexts, which expresses the same task
// graph — including the early-termination semantics — on a single node.
package parallel

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
)

// Region is a sub-interval of the error-bound search range.
type Region struct {
	Lower, Upper float64
}

// DefaultRegions is the number of error-bound regions used per field and
// time-step when the caller does not specify one. The paper found 12 tasks
// per field/time-step to be the best efficiency/runtime trade-off (§V-C).
const DefaultRegions = 12

// DefaultOverlap is the fractional overlap between adjacent regions. The
// paper uses a small fixed percentage of the region width (10%) so that a
// target sitting exactly on a region border is still surrounded by
// stationary points usable for quadratic refinement.
const DefaultOverlap = 0.10

// ErrBadRange is returned when a search range is empty or inverted.
var ErrBadRange = errors.New("parallel: invalid range")

// SplitRegions divides [lo, hi] into k regions that overlap by the given
// fraction of the region width. The first and last regions are clipped to
// the original range, as in the paper's Fig. 5.
func SplitRegions(lo, hi float64, k int, overlap float64) ([]Region, error) {
	if !(lo < hi) {
		return nil, fmt.Errorf("%w: [%v, %v]", ErrBadRange, lo, hi)
	}
	if k <= 0 {
		k = DefaultRegions
	}
	if overlap < 0 {
		overlap = 0
	}
	if overlap > 0.9 {
		overlap = 0.9
	}
	width := (hi - lo) / float64(k)
	pad := width * overlap / 2
	regions := make([]Region, k)
	for i := 0; i < k; i++ {
		rlo := lo + float64(i)*width - pad
		rhi := lo + float64(i+1)*width + pad
		if rlo < lo {
			rlo = lo
		}
		if rhi > hi {
			rhi = hi
		}
		regions[i] = Region{Lower: rlo, Upper: rhi}
	}
	return regions, nil
}

// ForEach runs fn for every input index with at most workers concurrent
// goroutines, stopping early if the context is cancelled. It returns the
// first non-nil error (other tasks still run to completion of the ones
// already started).
func ForEach(ctx context.Context, n, workers int, fn func(ctx context.Context, idx int) error) error {
	if n <= 0 {
		return nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	idxCh := make(chan int)
	errCh := make(chan error, n)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range idxCh {
				if ctx.Err() != nil {
					errCh <- ctx.Err()
					continue
				}
				errCh <- fn(ctx, idx)
			}
		}()
	}
	for i := 0; i < n; i++ {
		select {
		case idxCh <- i:
		case <-ctx.Done():
			// Stop feeding work; the drain below prefers a worker's real
			// failure over the generic cancellation.
			close(idxCh)
			wg.Wait()
			if err := drainErrors(ctx, errCh); err != nil {
				return err
			}
			return ctx.Err()
		}
	}
	close(idxCh)
	wg.Wait()
	return drainErrors(ctx, errCh)
}

// drainErrors closes and empties errCh, returning the first real failure.
// Context-cancellation errors rank last: on either exit path a worker may
// have failed for a real reason before (or while) the context was
// cancelled, and that failure — not the generic cancellation the other
// workers echo for the indices they skipped — is what the caller needs.
func drainErrors(ctx context.Context, errCh chan error) error {
	close(errCh)
	var first, cancelled error
	for err := range errCh {
		if err == nil {
			continue
		}
		if cerr := ctx.Err(); cerr != nil && errors.Is(err, cerr) {
			if cancelled == nil {
				cancelled = err
			}
			continue
		}
		if first == nil {
			first = err
		}
	}
	if first != nil {
		return first
	}
	return cancelled
}

// TaskOutcome reports the result of one task run by RunUntilAcceptable.
type TaskOutcome[R any] struct {
	// Index identifies the task in the input slice.
	Index int
	// Value is the task's result (zero value when Err != nil).
	Value R
	// Acceptable is true when the task declared its result acceptable.
	Acceptable bool
	// Started is false when the task was cancelled before it began.
	Started bool
	// Err is the task's error, if any.
	Err error
}

// Task is a unit of work that reports whether its result satisfies the
// caller's acceptance criterion (for FRaZ: whether the achieved compression
// ratio falls inside the target band).
type Task[R any] func(ctx context.Context) (result R, acceptable bool, err error)

// RunUntilAcceptable runs the tasks with at most workers concurrent
// goroutines. As soon as any task reports an acceptable result, tasks that
// have not yet started are skipped and running tasks are signalled to stop
// through their context, mirroring Algorithm 2's cancellation of outstanding
// MPI tasks. Every task that started is reported in the returned slice,
// indexed like the input.
func RunUntilAcceptable[R any](ctx context.Context, workers int, tasks []Task[R]) []TaskOutcome[R] {
	n := len(tasks)
	outcomes := make([]TaskOutcome[R], n)
	for i := range outcomes {
		outcomes[i].Index = i
	}
	if n == 0 {
		return outcomes
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	var mu sync.Mutex
	accepted := false

	idxCh := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range idxCh {
				mu.Lock()
				skip := accepted || runCtx.Err() != nil
				mu.Unlock()
				if skip {
					continue
				}
				outcomes[idx].Started = true
				value, ok, err := tasks[idx](runCtx)
				outcomes[idx].Value = value
				outcomes[idx].Acceptable = ok
				outcomes[idx].Err = err
				if ok && err == nil {
					mu.Lock()
					accepted = true
					mu.Unlock()
					cancel()
				}
			}
		}()
	}
	for i := 0; i < n; i++ {
		idxCh <- i
	}
	close(idxCh)
	wg.Wait()
	return outcomes
}
