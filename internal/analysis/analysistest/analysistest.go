// Package analysistest runs an analyzer over a testdata package and checks
// its diagnostics against `// want` comment expectations, in the manner of
// golang.org/x/tools/go/analysis/analysistest. A testdata file marks each
// line expected to be flagged with a comment holding one double-quoted Go
// regular expression per expected diagnostic:
//
//	kept := pool.GetBytes(n) // want `leaks on this return path`
//
// Lines without a want comment must not be flagged; both directions are
// asserted, so every analyzer test carries flagging and non-flagging cases
// in the same package.
package analysistest

import (
	"go/token"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"fraz/internal/analysis"
)

var wantRE = regexp.MustCompile("//\\s*want\\s+(.*)$")

// expectation is one `// want` pattern awaiting a matching diagnostic.
type expectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

// Run loads the package rooted at dir (typically "testdata/src/a"), applies
// the analyzer, and reports any mismatch between the diagnostics produced
// and the `// want` expectations in the source as test errors.
func Run(t *testing.T, dir string, a *analysis.Analyzer) {
	t.Helper()
	pkg, err := analysis.LoadDir(dir, "frazlint.test/"+strings.ReplaceAll(dir, "\\", "/"))
	if err != nil {
		t.Fatalf("loading %s: %v", dir, err)
	}
	diags, err := analysis.Run(pkg, []*analysis.Analyzer{a}, analysis.NewSession())
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, dir, err)
	}
	expects := collectWants(t, pkg)

	for _, d := range diags {
		if !claim(expects, d) {
			t.Errorf("unexpected diagnostic %s", d)
		}
	}
	for _, e := range expects {
		if !e.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", e.file, e.line, e.pattern)
		}
	}
}

// claim marks the first unmatched expectation covering the diagnostic and
// reports whether one existed.
func claim(expects []*expectation, d analysis.Diagnostic) bool {
	for _, e := range expects {
		if e.matched || e.file != d.Pos.Filename || e.line != d.Pos.Line {
			continue
		}
		if e.pattern.MatchString(d.Message) {
			e.matched = true
			return true
		}
	}
	return false
}

// collectWants parses every `// want` comment in the package into
// expectations keyed by file and line.
func collectWants(t *testing.T, pkg *analysis.Package) []*expectation {
	t.Helper()
	var out []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, pat := range splitPatterns(t, pos, m[1]) {
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, pat, err)
					}
					out = append(out, &expectation{file: pos.Filename, line: pos.Line, pattern: re})
				}
			}
		}
	}
	return out
}

// splitPatterns extracts the quoted regular expressions from the text after
// `want`. Both interpreted (`"..."`) and raw (backquoted) strings are
// accepted.
func splitPatterns(t *testing.T, pos token.Position, text string) []string {
	t.Helper()
	var pats []string
	text = strings.TrimSpace(text)
	for text != "" {
		switch text[0] {
		case '"':
			end := -1
			for i := 1; i < len(text); i++ {
				if text[i] == '"' && text[i-1] != '\\' {
					end = i
					break
				}
			}
			if end < 0 {
				t.Fatalf("%s:%d: unterminated want pattern in %q", pos.Filename, pos.Line, text)
			}
			s, err := strconv.Unquote(text[:end+1])
			if err != nil {
				t.Fatalf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, text[:end+1], err)
			}
			pats = append(pats, s)
			text = strings.TrimSpace(text[end+1:])
		case '`':
			end := strings.IndexByte(text[1:], '`')
			if end < 0 {
				t.Fatalf("%s:%d: unterminated want pattern in %q", pos.Filename, pos.Line, text)
			}
			pats = append(pats, text[1:end+1])
			text = strings.TrimSpace(text[end+2:])
		default:
			t.Fatalf("%s:%d: want patterns must be quoted strings, got %q", pos.Filename, pos.Line, text)
		}
	}
	return pats
}
