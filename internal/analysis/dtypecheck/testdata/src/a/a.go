// Package a exercises dtypecheck: switches over container.DType must list
// every width or carry a default branch.
package a

import "fraz/internal/container"

type kind int

const kindA kind = 0

// Exhaustive: both widths listed, no default needed.
func exhaustive(dt container.DType) int {
	switch dt {
	case container.Float32:
		return 4
	case container.Float64:
		return 8
	}
	return 0
}

// One width plus a default error branch: the unknown tag is rejected.
func defaulted(dt container.DType) int {
	switch dt {
	case container.Float32:
		return 4
	default:
		return -1
	}
}

// A non-constant case expression may match anything, so it counts as a
// default.
func nonConstCase(dt, other container.DType) int {
	switch dt {
	case other:
		return 1
	case container.Float32:
		return 4
	}
	return 0
}

// Missing Float64 with no default: the float64 path would fall through
// silently.
func missingWidth(dt container.DType) int {
	switch dt { // want `switch over container\.DType misses \[Float64\] and has no default error branch`
	case container.Float32:
		return 4
	}
	return 0
}

// Switches over unrelated types are none of this analyzer's business.
func otherSwitch(k kind) int {
	switch k {
	case kindA:
		return 1
	}
	return 0
}

// Tagless switches never dispatch on a value; ignored.
func tagless(dt container.DType) int {
	switch {
	case dt == container.Float32:
		return 4
	}
	return 0
}
