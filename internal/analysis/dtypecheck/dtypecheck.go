// Package dtypecheck verifies that every switch over the element-type tag
// (fraz/internal/container.DType, usually reached through Buffer.DType()) is
// width-exhaustive: it must either list a case for every known width —
// Float32 and Float64 — or carry a default branch that can reject the
// unknown tag with an error. A switch that silently covers one width falls
// through to zero-value behaviour for the other, which is exactly the class
// of silent float64 corruption the dtype-generic refactor (PR 5) guarded
// against by hand; this analyzer guards it by machine.
package dtypecheck

import (
	"go/ast"
	"go/constant"
	"go/types"

	"fraz/internal/analysis"
)

// Analyzer flags non-exhaustive switches over container.DType that lack a
// default branch.
var Analyzer = &analysis.Analyzer{
	Name: "dtypecheck",
	Doc: "check that switches over container.DType cover every element width " +
		"or carry a default error branch",
	Run: run,
}

// dtypePkgPath and dtypeName locate the tag type. The known widths are the
// declared constants of that type (Float32 = 0, Float64 = 1); they are read
// from the type-checked package rather than hard-coded, so adding a width
// updates the analyzer's idea of exhaustive automatically.
const (
	dtypePkgPath = "fraz/internal/container"
	dtypeName    = "DType"
)

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok || sw.Tag == nil {
				return true
			}
			tagType := pass.TypesInfo.Types[sw.Tag].Type
			if !isDType(tagType) {
				return true
			}
			checkSwitch(pass, sw, tagType)
			return true
		})
	}
	return nil
}

// isDType reports whether t (or the type it aliases) is container.DType.
func isDType(t types.Type) bool {
	if t == nil {
		return false
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == dtypePkgPath && obj.Name() == dtypeName
}

// knownWidths lists the DType constants declared in the tag type's package.
func knownWidths(t types.Type) map[int64]string {
	named := t.(*types.Named)
	pkg := named.Obj().Pkg()
	out := map[int64]string{}
	scope := pkg.Scope()
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || !types.Identical(c.Type(), t) {
			continue
		}
		if v, ok := constant.Int64Val(constant.ToInt(c.Val())); ok {
			out[v] = name
		}
	}
	return out
}

func checkSwitch(pass *analysis.Pass, sw *ast.SwitchStmt, tagType types.Type) {
	widths := knownWidths(tagType)
	covered := map[int64]bool{}
	hasDefault := false
	for _, clause := range sw.Body.List {
		cc, ok := clause.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			hasDefault = true
			continue
		}
		for _, e := range cc.List {
			tv, ok := pass.TypesInfo.Types[e]
			if !ok || tv.Value == nil {
				// A non-constant case expression may match anything;
				// treat it as covering like a default does.
				hasDefault = true
				continue
			}
			if v, ok := constant.Int64Val(constant.ToInt(tv.Value)); ok {
				covered[v] = true
			}
		}
	}
	if hasDefault {
		return
	}
	var missing []string
	for v, name := range widths {
		if !covered[v] {
			missing = append(missing, name)
		}
	}
	if len(missing) == 0 {
		return
	}
	// Deterministic order for stable diagnostics.
	for i := 0; i < len(missing); i++ {
		for j := i + 1; j < len(missing); j++ {
			if missing[j] < missing[i] {
				missing[i], missing[j] = missing[j], missing[i]
			}
		}
	}
	pass.Reportf(sw.Pos(), "switch over container.DType misses %v and has no default error branch: the missing width falls through silently", missing)
}
