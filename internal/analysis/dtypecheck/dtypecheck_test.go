package dtypecheck_test

import (
	"testing"

	"fraz/internal/analysis/analysistest"
	"fraz/internal/analysis/dtypecheck"
)

func TestDtypecheck(t *testing.T) {
	analysistest.Run(t, "testdata/src/a", dtypecheck.Analyzer)
}
