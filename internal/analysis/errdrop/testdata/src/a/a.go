// Package a exercises errdrop: error results of this module's own functions
// must not be silently discarded.
package a

import "fmt"

type failure string

func (f failure) Error() string { return string(f) }

func doWork() error { return failure("boom") }

func produce() (int, error) { return 0, nil }

func onlyValue() int { return 1 }

func run(f func()) { f() }

func flagged() {
	doWork()          // want `error result of a\.doWork is discarded`
	go doWork()       // want `error result of a\.doWork is discarded by go statement`
	defer doWork()    // want `error result of a\.doWork is discarded by defer`
	_ = doWork()      // want `error result of a\.doWork is assigned to _`
	v, _ := produce() // want `error result of a\.produce is assigned to _`
	_ = v

	// Calls inside function-literal arguments are still inspected.
	run(func() {
		doWork() // want `error result of a\.doWork is discarded`
	})
}

func handled() error {
	if err := doWork(); err != nil {
		return err
	}
	v, err := produce()
	if err != nil {
		return err
	}
	_ = v
	onlyValue() // no error result; nothing to drop
	return nil
}

func outOfScope() {
	// Callees outside the module (and the package under analysis) are go
	// vet's problem, not this analyzer's.
	fmt.Println("hello")
}

func annotated() {
	doWork() //frazlint:allow errdrop -- best-effort cleanup; failure is benign here
}
