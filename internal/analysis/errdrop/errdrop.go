// Package errdrop flags discarded error returns from this repository's own
// APIs — stricter than go vet, which only knows a short list of stdlib
// functions. Every function under fraz/... that returns an error returns it
// for a reason (parallel.ForEach reports worker failures, container WriteTo
// and ReadFrom report stream corruption, codec Compress reports infeasible
// bounds); a call site that drops the value turns those into silent
// corruption. Flagged forms: a call used as a bare statement, in a go or
// defer statement, and an assignment that sends the error result to the
// blank identifier. Intentional drops need a //frazlint:allow errdrop
// comment stating why the error is irrelevant.
package errdrop

import (
	"go/ast"
	"go/types"
	"strings"

	"fraz/internal/analysis"
)

// Analyzer flags dropped error results of module-internal calls.
var Analyzer = &analysis.Analyzer{
	Name: "errdrop",
	Doc: "flag discarded error returns from fraz/... functions (bare call " +
		"statements, go/defer calls, and assignments to _)",
	Run: run,
}

// modulePrefix scopes the check to this repository's APIs.
const modulePrefix = "fraz"

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := unparen(n.X).(*ast.CallExpr); ok {
					checkCall(pass, call, "discarded")
				}
				// Keep descending: the call's arguments may hold function
				// literals with droppable calls of their own.
			case *ast.GoStmt:
				checkCall(pass, n.Call, "discarded by go statement")
			case *ast.DeferStmt:
				checkCall(pass, n.Call, "discarded by defer")
			case *ast.AssignStmt:
				checkAssign(pass, n)
			}
			return true
		})
	}
	return nil
}

// checkCall reports a call whose final error result has no consumer.
func checkCall(pass *analysis.Pass, call *ast.CallExpr, how string) {
	obj, sig := callee(pass, call)
	if obj == nil || sig == nil || !inScope(pass, obj) {
		return
	}
	res := sig.Results()
	if res.Len() == 0 {
		return
	}
	last := res.At(res.Len() - 1).Type()
	if !isErrorType(last) {
		return
	}
	pass.Reportf(call.Pos(), "error result of %s is %s", calleeName(obj), how)
}

// checkAssign reports error results explicitly routed to the blank
// identifier, including the multi-value `v, _ := f()` form.
func checkAssign(pass *analysis.Pass, as *ast.AssignStmt) {
	// Only the single-call multi-assign and 1:1 forms bind positionally.
	if len(as.Rhs) == 1 {
		call, ok := unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return
		}
		obj, sig := callee(pass, call)
		if obj == nil || sig == nil || !inScope(pass, obj) {
			return
		}
		res := sig.Results()
		if res.Len() != len(as.Lhs) {
			// Single-value context (or mismatch): nothing positional to check.
			if res.Len() == 1 && len(as.Lhs) == 1 {
				checkBlank(pass, as.Lhs[0], res.At(0).Type(), obj)
			}
			return
		}
		for i := 0; i < res.Len(); i++ {
			checkBlank(pass, as.Lhs[i], res.At(i).Type(), obj)
		}
		return
	}
	if len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i, rhs := range as.Rhs {
		call, ok := unparen(rhs).(*ast.CallExpr)
		if !ok {
			continue
		}
		obj, sig := callee(pass, call)
		if obj == nil || sig == nil || !inScope(pass, obj) {
			continue
		}
		res := sig.Results()
		if res.Len() == 1 {
			checkBlank(pass, as.Lhs[i], res.At(0).Type(), obj)
		}
	}
}

func checkBlank(pass *analysis.Pass, lhs ast.Expr, t types.Type, obj types.Object) {
	id, ok := lhs.(*ast.Ident)
	if !ok || id.Name != "_" || !isErrorType(t) {
		return
	}
	pass.Reportf(id.Pos(), "error result of %s is assigned to _", calleeName(obj))
}

// callee resolves the invoked function object and signature; conversions
// and builtins resolve to nil.
func callee(pass *analysis.Pass, call *ast.CallExpr) (types.Object, *types.Signature) {
	fun := unparen(call.Fun)
	switch fn := fun.(type) {
	case *ast.IndexExpr:
		fun = unparen(fn.X)
	case *ast.IndexListExpr:
		fun = unparen(fn.X)
	}
	var obj types.Object
	switch fn := fun.(type) {
	case *ast.Ident:
		obj = pass.TypesInfo.Uses[fn]
	case *ast.SelectorExpr:
		obj = pass.TypesInfo.Uses[fn.Sel]
	default:
		return nil, nil
	}
	if obj == nil {
		return nil, nil
	}
	sig, ok := obj.Type().(*types.Signature)
	if !ok {
		return nil, nil
	}
	return obj, sig
}

// inScope reports whether the callee belongs to this module (or the package
// under analysis itself, which covers testdata packages).
func inScope(pass *analysis.Pass, obj types.Object) bool {
	pkg := obj.Pkg()
	if pkg == nil {
		return false
	}
	if pkg == pass.Pkg {
		return true
	}
	return pkg.Path() == modulePrefix || strings.HasPrefix(pkg.Path(), modulePrefix+"/")
}

var errorType = types.Universe.Lookup("error").Type()

func isErrorType(t types.Type) bool { return types.Identical(t, errorType) }

func calleeName(obj types.Object) string {
	if obj.Pkg() != nil {
		return obj.Pkg().Name() + "." + obj.Name()
	}
	return obj.Name()
}

func unparen(e ast.Expr) ast.Expr {
	for {
		pe, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = pe.X
	}
}
