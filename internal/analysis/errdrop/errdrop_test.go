package errdrop_test

import (
	"testing"

	"fraz/internal/analysis/analysistest"
	"fraz/internal/analysis/errdrop"
)

func TestErrdrop(t *testing.T) {
	analysistest.Run(t, "testdata/src/a", errdrop.Analyzer)
}
