// Package frazlint assembles the repository's analyzer suite in one place,
// so the cmd/frazlint driver and the repo-hygiene test run the identical
// set of checks.
package frazlint

import (
	"fraz/internal/analysis"
	"fraz/internal/analysis/dtypecheck"
	"fraz/internal/analysis/errdrop"
	"fraz/internal/analysis/floateq"
	"fraz/internal/analysis/magiccheck"
	"fraz/internal/analysis/poolcheck"
)

// Analyzers is the full suite, in the order the driver runs them.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		poolcheck.Analyzer,
		magiccheck.Analyzer,
		dtypecheck.Analyzer,
		floateq.Analyzer,
		errdrop.Analyzer,
	}
}

// Lint loads the packages matching the go-list patterns, runs every
// analyzer over each, and returns the surviving diagnostics sorted by
// position within each package (packages are processed in import-path
// order, which also makes magiccheck's cross-package duplicate report
// deterministic).
func Lint(patterns ...string) ([]analysis.Diagnostic, error) {
	pkgs, err := analysis.Load(patterns...)
	if err != nil {
		return nil, err
	}
	session := analysis.NewSession()
	analyzers := Analyzers()
	var diags []analysis.Diagnostic
	for _, pkg := range pkgs {
		ds, err := analysis.Run(pkg, analyzers, session)
		if err != nil {
			return nil, err
		}
		diags = append(diags, ds...)
	}
	return diags, nil
}
