// Package analysis is a minimal static-analysis framework in the vocabulary
// of golang.org/x/tools/go/analysis, built entirely on the standard library
// (go/parser, go/types, and the go command) so the repository's lint suite
// carries no module dependencies. It exists to machine-check the invariants
// FRaZ's correctness rests on but the compiler cannot see: pooled-buffer
// lifecycles, stream-magic uniqueness, dtype-dispatch exhaustiveness,
// floating-point comparison discipline, and error propagation. The checkers
// themselves live in the sibling packages (poolcheck, magiccheck, dtypecheck,
// floateq, errdrop); cmd/frazlint is the multichecker driver that runs them
// repo-wide.
//
// The shape mirrors x/tools deliberately — an Analyzer owns a Run function
// that receives a Pass with the package's syntax and type information — so
// the suite could migrate to the real framework by swapping imports if the
// dependency ever becomes acceptable.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer describes one invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //frazlint:allow comments.
	Name string
	// Doc is a one-paragraph description of the invariant the analyzer
	// protects, shown by `frazlint -help`.
	Doc string
	// Run inspects one package and reports violations through the pass.
	Run func(*Pass) error
}

// Pass carries one package's syntax and type information to an analyzer,
// plus the reporting and cross-package state channels.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Session is shared by every pass of one driver run, letting an
	// analyzer accumulate cross-package state (magiccheck uses it to
	// detect stream-magic collisions between codec packages).
	Session *Session

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one reported invariant violation.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Session holds cross-package analyzer state for one driver run. Analyzers
// key their state by their own name, so independent checkers never collide.
type Session struct {
	state map[string]any
}

// NewSession returns an empty session.
func NewSession() *Session { return &Session{state: map[string]any{}} }

// State returns the value stored under key, creating it with mk on first
// use.
func (s *Session) State(key string, mk func() any) any {
	v, ok := s.state[key]
	if !ok {
		v = mk()
		s.state[key] = v
	}
	return v
}

// Run applies the analyzers to one loaded package and returns the surviving
// diagnostics: reports suppressed by a //frazlint:allow comment (same line
// or the line directly above, naming the analyzer or "all") are dropped, so
// deliberate exceptions are visible in the source instead of in lint
// configuration. Diagnostics come back sorted by position.
func Run(pkg *Package, analyzers []*Analyzer, session *Session) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			Session:   session,
			diags:     &diags,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Types.Path(), err)
		}
	}
	allowed := allowLines(pkg)
	kept := diags[:0]
	for _, d := range diags {
		if allowed.covers(d) {
			continue
		}
		kept = append(kept, d)
	}
	sort.Slice(kept, func(i, j int) bool {
		a, b := kept[i].Pos, kept[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return kept[i].Analyzer < kept[j].Analyzer
	})
	return kept, nil
}

// allowSet maps file -> line -> analyzer names allowed on that line.
type allowSet map[string]map[int]map[string]bool

func (s allowSet) covers(d Diagnostic) bool {
	lines := s[d.Pos.Filename]
	for _, ln := range []int{d.Pos.Line, d.Pos.Line - 1} {
		if names := lines[ln]; names != nil && (names[d.Analyzer] || names["all"]) {
			return true
		}
	}
	return false
}

// allowLines scans the package's comments for //frazlint:allow directives.
// The directive form is `//frazlint:allow <name>... [-- reason]`; it
// suppresses the named analyzers (or "all") on its own line and the line
// below it.
func allowLines(pkg *Package) allowSet {
	set := allowSet{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//frazlint:allow")
				if !ok {
					continue
				}
				if reason := strings.SplitN(text, "--", 2); len(reason) > 0 {
					text = reason[0]
				}
				pos := pkg.Fset.Position(c.Pos())
				lines := set[pos.Filename]
				if lines == nil {
					lines = map[int]map[string]bool{}
					set[pos.Filename] = lines
				}
				names := lines[pos.Line]
				if names == nil {
					names = map[string]bool{}
					lines[pos.Line] = names
				}
				for _, n := range strings.Fields(text) {
					names[n] = true
				}
			}
		}
	}
	return set
}
