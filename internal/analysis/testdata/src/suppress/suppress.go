// Package suppress is the fixture for the framework's suppression test: a
// synthetic analyzer reports every call in target, and the allow directives
// must silence exactly the annotated ones.
package suppress

func callee() {}

func target() {
	callee() // unsuppressed: must survive
	callee() //frazlint:allow testcheck
	callee() //frazlint:allow all -- blanket waiver
	//frazlint:allow testcheck -- directive on the line above
	callee()
	callee() //frazlint:allow othercheck (wrong analyzer: must survive)
}
