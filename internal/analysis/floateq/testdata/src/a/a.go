// Package a exercises floateq: float equality is flagged except for the NaN
// self-comparison idiom, exact-zero comparison, and annotated exceptions.
package a

func flagged(a, b float64, f float32) bool {
	if a == b { // want `floating-point == comparison`
		return true
	}
	if f != float32(b) { // want `floating-point != comparison`
		return true
	}
	return a == 1.5 // want `floating-point == comparison`
}

func nanIdiom(a float64) bool {
	return a != a // the portable NaN test
}

func zeroCompare(bound float64) bool {
	// Exact-zero tests are well-defined ("bound disabled", "spread is
	// exactly zero") and stay unflagged.
	if bound == 0 {
		return true
	}
	return 0.0 != bound
}

func intCompare(a, b int) bool {
	return a == b
}

func annotated(rep, bmin float64) bool {
	// The midrange re-check wants exactness; the annotation documents it.
	return rep == bmin //frazlint:allow floateq -- exact representative check is intended
}

func annotatedAbove(rep, bmax float64) bool {
	//frazlint:allow floateq -- exactness intended; annotation on the line above
	return rep == bmax
}
