// Package floateq flags == and != between floating-point operands. In the
// codec kernels a float equality is nearly always a latent bug — two values
// within the error bound compare unequal, NaNs compare unequal to
// everything — so the default is to report every comparison and make the
// exceptions explicit in the source. Two idioms are allowed without
// annotation: the NaN self-comparison (x != x) and comparison against a
// zero constant, which is exact in IEEE-754 and is how the kernels test
// "bound disabled" and "spread is exactly zero" (the constant-block min/max
// detection). Anything else needs a //frazlint:allow floateq comment
// stating why exactness is intended.
package floateq

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"

	"fraz/internal/analysis"
)

// Analyzer flags floating-point equality comparisons outside the allowed
// idioms.
var Analyzer = &analysis.Analyzer{
	Name: "floateq",
	Doc: "flag == and != on floating-point operands except NaN self-comparison " +
		"and comparison against the exact constant 0",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			if !isFloat(pass, be.X) && !isFloat(pass, be.Y) {
				return true
			}
			if nanIdiom(be) || zeroConst(pass, be.X) || zeroConst(pass, be.Y) {
				return true
			}
			pass.Reportf(be.OpPos, "floating-point %s comparison: values within the error bound compare unequal; use a tolerance, or annotate with //frazlint:allow floateq if exactness is intended", be.Op)
			return true
		})
	}
	return nil
}

// isFloat reports whether the expression's type is (or defaults to) a
// floating-point kind.
func isFloat(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	basic, ok := tv.Type.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	switch basic.Kind() {
	case types.Float32, types.Float64, types.UntypedFloat:
		return true
	}
	return false
}

// nanIdiom recognises x != x and x == x, the portable NaN test.
func nanIdiom(be *ast.BinaryExpr) bool {
	return types.ExprString(be.X) == types.ExprString(be.Y)
}

// zeroConst reports whether e is a compile-time constant equal to zero.
// Comparing against exact zero is well-defined in IEEE-754 (modulo the -0
// case, which compares equal to +0 — the behaviour the kernels want).
func zeroConst(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Value == nil {
		return false
	}
	return constant.Compare(tv.Value, token.EQL, constant.MakeInt64(0))
}
