package floateq_test

import (
	"testing"

	"fraz/internal/analysis/analysistest"
	"fraz/internal/analysis/floateq"
)

func TestFloateq(t *testing.T) {
	analysistest.Run(t, "testdata/src/a", floateq.Analyzer)
}
