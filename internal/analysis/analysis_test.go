package analysis

import (
	"go/ast"
	"strings"
	"testing"
)

// reportCalls flags every call expression, giving the suppression test a
// deterministic diagnostic stream to filter.
var reportCalls = &Analyzer{
	Name: "testcheck",
	Doc:  "report every call expression (test fixture)",
	Run: func(pass *Pass) error {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok {
					pass.Reportf(call.Pos(), "call sighted")
				}
				return true
			})
		}
		return nil
	},
}

func TestAllowDirectivesSuppress(t *testing.T) {
	pkg, err := LoadDir("testdata/src/suppress", "frazlint.test/suppress")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	diags, err := Run(pkg, []*Analyzer{reportCalls}, NewSession())
	if err != nil {
		t.Fatalf("running fixture analyzer: %v", err)
	}
	// Five calls in target: same-line allow, blanket `all`, and line-above
	// allow suppress three; the bare call and the wrong-name allow survive.
	if len(diags) != 2 {
		t.Fatalf("got %d diagnostics, want 2: %v", len(diags), diags)
	}
	for _, d := range diags {
		if d.Analyzer != "testcheck" {
			t.Errorf("diagnostic %s attributed to %q, want testcheck", d, d.Analyzer)
		}
	}
	if diags[0].Pos.Line >= diags[1].Pos.Line {
		t.Errorf("diagnostics not sorted by line: %v", diags)
	}
}

func TestDiagnosticString(t *testing.T) {
	pkg, err := LoadDir("testdata/src/suppress", "frazlint.test/suppress2")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	diags, err := Run(pkg, []*Analyzer{reportCalls}, NewSession())
	if err != nil {
		t.Fatalf("running fixture analyzer: %v", err)
	}
	if len(diags) == 0 {
		t.Fatal("fixture produced no diagnostics")
	}
	s := diags[0].String()
	if !strings.Contains(s, "suppress.go:") || !strings.Contains(s, "[testcheck]") {
		t.Errorf("diagnostic string %q missing file position or analyzer tag", s)
	}
}

func TestSessionState(t *testing.T) {
	s := NewSession()
	calls := 0
	mk := func() any { calls++; return map[string]int{} }
	a := s.State("k", mk).(map[string]int)
	a["x"] = 1
	b := s.State("k", mk).(map[string]int)
	if calls != 1 {
		t.Errorf("constructor ran %d times, want 1", calls)
	}
	if b["x"] != 1 {
		t.Errorf("second State call returned a different value: %v", b)
	}
}
