// Package magiccheck verifies the stream-magic conventions of the codec
// kernels: every 4-byte magic constant (a package-level uint32 const whose
// name contains "magic") must be unique across the whole build — two codecs
// sharing a magic would silently mis-route decodes — must carry the element
// width it tags in its trailing ASCII digit ('1' for the float32 variant of
// a *32 constant, '2' for the float64 variant of a *64 constant, matching
// SZG1/SZG2, ZFP1/ZFP2, SZX1/SZX2, …), and must be reachable from the
// package's decode dispatch: a magic only ever written but never matched in
// a switch case or equality comparison marks a stream no decoder will ever
// accept. Reachability looks through one level of helper function (the
// magicFor[T] idiom), so a magic returned by a helper that is itself
// compared in the decode path counts as reachable.
package magiccheck

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"

	"fraz/internal/analysis"
)

// Analyzer flags duplicate, wrongly width-tagged, or decode-unreachable
// stream magics.
var Analyzer = &analysis.Analyzer{
	Name: "magiccheck",
	Doc: "check that 4-byte stream-magic constants are unique across packages, " +
		"carry the right width digit, and are matched somewhere on a decode path",
	Run: run,
}

// seenKey namespaces the cross-package duplicate table in the session.
const seenKey = "magiccheck.seen"

// prior records where a magic value was first declared.
type prior struct {
	pkg  string
	name string
}

type magicConst struct {
	obj  types.Object
	name string
	val  uint32
	pos  token.Pos
}

func run(pass *analysis.Pass) error {
	magics := collect(pass)
	if len(magics) == 0 {
		return nil
	}

	seen := pass.Session.State(seenKey, func() any { return map[uint32]prior{} }).(map[uint32]prior)
	for _, m := range magics {
		if p, dup := seen[m.val]; dup {
			pass.Reportf(m.pos, "magic %s (%q) collides with %s.%s: streams would mis-route between codecs",
				m.name, asciiBytes(m.val), p.pkg, p.name)
			continue
		}
		seen[m.val] = prior{pkg: pass.Pkg.Name(), name: m.name}
	}

	for _, m := range magics {
		checkWidthTag(pass, m)
	}

	reachable := decodeReachable(pass)
	for _, m := range magics {
		if !reachable[m.obj] {
			pass.Reportf(m.pos, "magic %s (%q) is never matched in a switch case or comparison: no decode path accepts its streams",
				m.name, asciiBytes(m.val))
		}
	}
	return nil
}

// collect gathers the package-level magic constants: untyped or uint32
// integer consts whose name contains "magic".
func collect(pass *analysis.Pass) []magicConst {
	var out []magicConst
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.CONST {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, name := range vs.Names {
					if !strings.Contains(strings.ToLower(name.Name), "magic") {
						continue
					}
					obj := pass.TypesInfo.Defs[name]
					cnst, ok := obj.(*types.Const)
					if !ok {
						continue
					}
					v, ok := constant.Uint64Val(constant.ToInt(cnst.Val()))
					if !ok || v > 0xFFFFFFFF {
						continue
					}
					out = append(out, magicConst{obj: obj, name: name.Name, val: uint32(v), pos: name.Pos()})
				}
			}
		}
	}
	return out
}

// checkWidthTag enforces the width-digit convention: among the four ASCII
// bytes of the magic exactly one must be a digit, and that digit must be '1'
// for a *32-named constant and '2' for a *64-named one. Constants whose name
// carries no width suffix are exempt.
func checkWidthTag(pass *analysis.Pass, m magicConst) {
	var want byte
	switch {
	case strings.HasSuffix(m.name, "32"):
		want = '1'
	case strings.HasSuffix(m.name, "64"):
		want = '2'
	default:
		return
	}
	b := asciiBytes(m.val)
	var digits []byte
	for i := 0; i < len(b); i++ {
		if b[i] >= '0' && b[i] <= '9' {
			digits = append(digits, b[i])
		}
	}
	if len(digits) != 1 {
		pass.Reportf(m.pos, "magic %s (%q) must carry exactly one width-tag digit, found %d",
			m.name, b, len(digits))
		return
	}
	if digits[0] != want {
		pass.Reportf(m.pos, "magic %s (%q) tags the wrong width: name says %s so the digit must be %q, got %q",
			m.name, b, m.name[len(m.name)-2:], want, digits[0])
	}
}

// asciiBytes renders the magic's four bytes most-significant first, the
// order the repository's comments quote them in.
func asciiBytes(v uint32) string {
	return string([]byte{byte(v >> 24), byte(v >> 16), byte(v >> 8), byte(v)})
}

// decodeReachable computes which magic constants can match an incoming
// stream: used directly in a case clause or ==/!= comparison, or returned
// by a helper function that is itself called in such a position.
func decodeReachable(pass *analysis.Pass) map[types.Object]bool {
	// helperReturns maps a function object to the magic constants its body
	// returns (the magicFor[T] pattern).
	helperReturns := map[types.Object][]types.Object{}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fobj := pass.TypesInfo.Defs[fd.Name]
			if fobj == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				ret, ok := n.(*ast.ReturnStmt)
				if !ok {
					return true
				}
				for _, r := range ret.Results {
					ast.Inspect(r, func(m ast.Node) bool {
						if id, ok := m.(*ast.Ident); ok {
							if obj := pass.TypesInfo.Uses[id]; obj != nil {
								if _, isConst := obj.(*types.Const); isConst {
									helperReturns[fobj] = append(helperReturns[fobj], obj)
								}
							}
						}
						return true
					})
				}
				return true
			})
		}
	}

	reachable := map[types.Object]bool{}
	markExpr := func(e ast.Expr) {
		ast.Inspect(e, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.Ident:
				if obj := pass.TypesInfo.Uses[n]; obj != nil {
					reachable[obj] = true
				}
			case *ast.CallExpr:
				if fobj := calleeObject(pass, n); fobj != nil {
					for _, c := range helperReturns[fobj] {
						reachable[c] = true
					}
				}
			}
			return true
		})
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CaseClause:
				for _, e := range n.List {
					markExpr(e)
				}
			case *ast.BinaryExpr:
				if n.Op == token.EQL || n.Op == token.NEQ {
					markExpr(n.X)
					markExpr(n.Y)
				}
			}
			return true
		})
	}
	return reachable
}

// calleeObject resolves the function object a call invokes, looking through
// generic instantiation.
func calleeObject(pass *analysis.Pass, call *ast.CallExpr) types.Object {
	fun := call.Fun
	switch fn := fun.(type) {
	case *ast.IndexExpr:
		fun = fn.X
	case *ast.IndexListExpr:
		fun = fn.X
	}
	switch fn := fun.(type) {
	case *ast.Ident:
		return pass.TypesInfo.Uses[fn]
	case *ast.SelectorExpr:
		return pass.TypesInfo.Uses[fn.Sel]
	}
	return nil
}
