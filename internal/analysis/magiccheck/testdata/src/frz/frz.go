// Package frz pins the magiccheck conventions for the frsz codec's stream
// magics: the real FRZ1/FRZ2 values must pass the width-tag rule (trailing
// ASCII digit '1' on the *32 constant, '2' on the *64 one), count as
// decode-reachable through the magicFor helper idiom the codec uses, and
// any re-declaration of the same 4 bytes must be flagged as a collision.
package frz

const (
	// The frsz stream magics, as declared by internal/frsz: "FRZ1" tags
	// float32 streams, "FRZ2" float64.
	magicFRSZ32 = 0x315A5246 // "FRZ1"
	magicFRSZ64 = 0x325A5246 // "FRZ2"

	// A second codec claiming the float32 value: streams would mis-route.
	// (The analyzer renders the constant most-significant byte first, so
	// the little-endian stream bytes "FRZ1" print as "1ZRF".)
	magicImposter32 = 0x315A5246 // want `magic magicImposter32 \("1ZRF"\) collides with frz\.magicFRSZ32`

	// Swapping the width digits breaks the tag rule even though the values
	// themselves are fresh.
	magicSwap32 = 0x32505753 // want `magic magicSwap32 \("2PWS"\) tags the wrong width`
	magicSwap64 = 0x31505753 // want `magic magicSwap64 \("1PWS"\) tags the wrong width`
)

// magicFor mirrors the frsz width-dispatch idiom: the decode switch matches
// the helper's result, which must make both magics reachable.
func magicFor(wide bool) uint32 {
	if wide {
		return magicFRSZ64
	}
	return magicFRSZ32
}

func decode(m uint32) int {
	switch m {
	case magicFor(false):
		return 32
	case magicFor(true):
		return 64
	case magicImposter32:
		return 32
	default:
		return 0
	}
}

func rejectsSwapped(m uint32) bool {
	return m != magicSwap32 && m != magicSwap64
}
