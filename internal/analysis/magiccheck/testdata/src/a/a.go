// Package a exercises magiccheck: uniqueness, the width-tag digit
// convention, and decode reachability (directly and through a helper).
package a

const (
	// Well-formed pair: unique values, digit matches the name's width
	// suffix, matched in the decode switch below.
	magicOK32 = 0x4F4B4731 // "OKG1"
	magicOK64 = 0x4F4B4732 // "OKG2"

	// Reached through the helper function, not a literal case expression.
	magicVia32 = 0x56494131 // "VIA1"

	// No width suffix in the name: exempt from the digit rule.
	sentinelMagic = 0x53454E54 // "SENT"

	// Same value declared twice: the second is a collision.
	magicDup32      = 0x44555031 // "DUP1"
	magicDupTwin32  = 0x44555031 // want `magic magicDupTwin32 \("DUP1"\) collides with a\.magicDup32`
	magicBadDigit32 = 0x42414432 // want `magic magicBadDigit32 \("BAD2"\) tags the wrong width`
	magicNoDigit64  = 0x4E4F4E45 // want `magic magicNoDigit64 \("NONE"\) must carry exactly one width-tag digit, found 0`

	// Written by an encoder somewhere but never compared on any decode
	// path: streams carrying it can never be opened.
	magicOrphan32 = 0x4F525031 // want `magic magicOrphan32 \("ORP1"\) is never matched in a switch case or comparison`

	// Not a magic at all; the analyzer must ignore it.
	headerLen = 16
)

func magicForWidth(w int) uint32 {
	if w == 64 {
		return magicOK64
	}
	return magicVia32
}

func dispatch(m uint32) int {
	switch m {
	case magicOK32:
		return 32
	case magicForWidth(64), magicForWidth(32):
		return 64
	default:
		return 0
	}
}

func accepts(m uint32) bool {
	if m == sentinelMagic {
		return true
	}
	return m == magicDup32 || m != magicDupTwin32 ||
		m == magicBadDigit32 || m == magicNoDigit64
}

func emit() []uint32 {
	// Encoder-side writes do not make a magic decode-reachable.
	return []uint32{magicOrphan32, headerLen}
}
