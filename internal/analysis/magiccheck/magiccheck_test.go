package magiccheck_test

import (
	"testing"

	"fraz/internal/analysis/analysistest"
	"fraz/internal/analysis/magiccheck"
)

func TestMagiccheck(t *testing.T) {
	analysistest.Run(t, "testdata/src/a", magiccheck.Analyzer)
}

// TestMagiccheckFRZMagics pins the analyzer's treatment of the frsz codec's
// real stream magics: FRZ1/FRZ2 satisfy the width-tag digit rule, helper
// dispatch makes them decode-reachable, and re-declaring either value is a
// collision.
func TestMagiccheckFRZMagics(t *testing.T) {
	analysistest.Run(t, "testdata/src/frz", magiccheck.Analyzer)
}
