package magiccheck_test

import (
	"testing"

	"fraz/internal/analysis/analysistest"
	"fraz/internal/analysis/magiccheck"
)

func TestMagiccheck(t *testing.T) {
	analysistest.Run(t, "testdata/src/a", magiccheck.Analyzer)
}
