package poolcheck_test

import (
	"testing"

	"fraz/internal/analysis/analysistest"
	"fraz/internal/analysis/poolcheck"
)

func TestPoolcheck(t *testing.T) {
	analysistest.Run(t, "testdata/src/a", poolcheck.Analyzer)
}
