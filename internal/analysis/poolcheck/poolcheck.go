// Package poolcheck verifies the lifecycle discipline of fraz/internal/pool
// buffers: every pool.Get* acquisition must reach a matching pool.Put* (or
// be handed to the caller by returning it) on every path out of the
// function, including early error returns. It also flags double puts and
// puts of a reslice alias, both of which poison the free lists for later
// gets.
//
// The checker is an AST-level path walk, not a full CFG dataflow: within a
// function it tracks pooled slices held in local variables (and in fields of
// local structs, the container writer idiom), follows branches of
// if/for/switch independently, and reports at each return statement any
// acquisition that is neither put, deferred-put, nor part of the returned
// value. Local helpers that merely wrap the pool (a function whose body
// returns a pool.Get result, or one that puts its argument) are treated as
// getters and putters themselves, so the sz kernels' generic getFloats /
// putFloats bridges stay visible to the check. A pooled slice captured by a
// non-deferred closure or stored into a longer-lived structure leaves the
// function's custody and is conservatively dropped from tracking rather
// than reported.
package poolcheck

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"fraz/internal/analysis"
)

// Analyzer flags pool.Get* buffers that can leak, be put twice, or be put
// through a reslice alias.
var Analyzer = &analysis.Analyzer{
	Name: "poolcheck",
	Doc: "check that every pool.Get* is matched by a pool.Put* on all paths " +
		"(or ownership is transferred by returning the buffer), with no double " +
		"puts and no puts of reslice aliases",
	Run: run,
}

const poolPathSuffix = "internal/pool"

func run(pass *analysis.Pass) error {
	if strings.HasSuffix(pass.Pkg.Path(), poolPathSuffix) {
		return nil // the pool's own plumbing necessarily handles raw slices
	}
	c := &checker{
		pass:    pass,
		getters: map[types.Object]bool{},
		putters: map[types.Object]bool{},
	}
	c.classifyWrappers()
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				c.checkBody(fd.Body)
			}
		}
		// Function literals get the same treatment as declared functions;
		// their bodies are skipped by the enclosing walk, so each is
		// analyzed exactly once.
		ast.Inspect(f, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				c.checkBody(lit.Body)
			}
			return true
		})
	}
	return nil
}

type checker struct {
	pass    *analysis.Pass
	getters map[types.Object]bool // local funcs whose result is a pooled slice
	putters map[types.Object]bool // local funcs that put their argument
}

// classifyWrappers finds package-local functions that wrap the pool: a
// getter returns a pool.Get result (possibly through a conversion), a
// putter contains a pool.Put call. Calls to them count as gets and puts.
func (c *checker) classifyWrappers() {
	for _, f := range c.pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if ok && fd.Body != nil {
				c.classifyWrapper(fd)
			}
		}
	}
}

func (c *checker) classifyWrapper(fd *ast.FuncDecl) {
	obj := c.pass.TypesInfo.Defs[fd.Name]
	if obj == nil {
		return
	}
	returnsGet, puts := false, false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ReturnStmt:
			for _, r := range n.Results {
				ast.Inspect(r, func(m ast.Node) bool {
					if call, ok := m.(*ast.CallExpr); ok && c.isPoolCall(call, "Get") {
						returnsGet = true
					}
					return true
				})
			}
		case *ast.CallExpr:
			if c.isPoolCall(n, "Put") {
				puts = true
			}
		}
		return true
	})
	if returnsGet {
		c.getters[obj] = true
	}
	if puts && !returnsGet {
		c.putters[obj] = true
	}
}

// isPoolCall reports whether call invokes fraz/internal/pool.<prefix>*.
func (c *checker) isPoolCall(call *ast.CallExpr, prefix string) bool {
	obj := c.calleeObject(call)
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	return strings.HasSuffix(obj.Pkg().Path(), poolPathSuffix) && strings.HasPrefix(obj.Name(), prefix)
}

// isGetCall reports whether call acquires a pooled slice (directly or via a
// local getter wrapper).
func (c *checker) isGetCall(call *ast.CallExpr) bool {
	if c.isPoolCall(call, "Get") {
		return true
	}
	return c.getters[c.calleeObject(call)]
}

// isPutCall reports whether call releases a pooled slice.
func (c *checker) isPutCall(call *ast.CallExpr) bool {
	if c.isPoolCall(call, "Put") {
		return true
	}
	return c.putters[c.calleeObject(call)]
}

// calleeObject resolves the function object a call invokes, looking through
// generic instantiation.
func (c *checker) calleeObject(call *ast.CallExpr) types.Object {
	fun := unparen(call.Fun)
	switch fn := fun.(type) {
	case *ast.IndexExpr:
		fun = unparen(fn.X)
	case *ast.IndexListExpr:
		fun = unparen(fn.X)
	}
	switch fn := fun.(type) {
	case *ast.Ident:
		return c.pass.TypesInfo.Uses[fn]
	case *ast.SelectorExpr:
		return c.pass.TypesInfo.Uses[fn.Sel]
	}
	return nil
}

// ref identifies a tracked holder of a pooled slice: a local variable, or a
// named field of a local struct variable (field != "").
type ref struct {
	obj   types.Object
	field string
}

func (r ref) name() string {
	if r.field != "" {
		return r.obj.Name() + "." + r.field
	}
	return r.obj.Name()
}

// state is the walker's view of one control-flow path.
type state struct {
	live     map[ref]token.Pos // acquired, not yet released
	put      map[ref]bool      // released on this path
	deferred map[ref]bool      // released by a defer, safe on every exit
	alias    map[ref]ref       // reslice alias -> tracked root
}

func newState() *state {
	return &state{live: map[ref]token.Pos{}, put: map[ref]bool{}, deferred: map[ref]bool{}, alias: map[ref]ref{}}
}

func (s *state) clone() *state {
	n := newState()
	for k, v := range s.live {
		n.live[k] = v
	}
	for k := range s.put {
		n.put[k] = true
	}
	for k := range s.deferred {
		n.deferred[k] = true
	}
	for k, v := range s.alias {
		n.alias[k] = v
	}
	return n
}

// merge folds another fall-through path into s: a buffer is considered live
// if any merged path still holds it, so a put missing on one branch is
// reported at the next return.
func (s *state) merge(o *state) {
	for k, v := range o.live {
		if _, ok := s.live[k]; !ok {
			s.live[k] = v
		}
	}
	for k := range o.put {
		s.put[k] = true
	}
	for k := range o.deferred {
		s.deferred[k] = true
		delete(s.live, k)
	}
	for k, v := range o.alias {
		s.alias[k] = v
	}
}

// untrack abandons custody of every ref rooted at the same object as r.
func (s *state) untrack(r ref) {
	delete(s.live, r)
	delete(s.put, r)
}

// untrackObj abandons every ref held by obj (the whole struct escaped).
func (s *state) untrackObj(obj types.Object) {
	for k := range s.live {
		if k.obj == obj {
			delete(s.live, k)
		}
	}
}

type walker struct {
	c *checker
	s *state
}

func (c *checker) checkBody(body *ast.BlockStmt) {
	w := &walker{c: c, s: newState()}
	if terminated := w.stmts(body.List); !terminated {
		w.reportLeaks(body.Rbrace, nil)
	}
}

func (w *walker) stmts(list []ast.Stmt) bool {
	for _, s := range list {
		if w.stmt(s) {
			return true
		}
	}
	return false
}

// stmt walks one statement and reports whether the path terminates here
// (return, branch, or panic-like call).
func (w *walker) stmt(s ast.Stmt) bool {
	switch s := s.(type) {
	case *ast.BlockStmt:
		return w.stmts(s.List)
	case *ast.ReturnStmt:
		w.handleReturn(s)
		return true
	case *ast.BranchStmt:
		return true // break/continue/goto: stop following this path
	case *ast.AssignStmt:
		w.handleAssign(s)
	case *ast.DeclStmt:
		w.handleDecl(s)
	case *ast.ExprStmt:
		w.handleExpr(s.X)
	case *ast.DeferStmt:
		w.handleDefer(s)
	case *ast.GoStmt:
		w.escapeRefsIn(s.Call)
	case *ast.SendStmt:
		w.escapeRefsIn(s.Value)
	case *ast.IfStmt:
		return w.handleIf(s)
	case *ast.ForStmt:
		if s.Init != nil {
			w.stmt(s.Init)
		}
		w.useExpr(s.Cond)
		body := w.fork()
		body.stmts(s.Body.List)
		if s.Post != nil {
			body.stmt(s.Post)
		}
		w.s.merge(body.s)
	case *ast.RangeStmt:
		w.useExpr(s.X)
		body := w.fork()
		body.stmts(s.Body.List)
		w.s.merge(body.s)
	case *ast.SwitchStmt:
		return w.handleSwitch(s.Init, s.Tag, s.Body, nil)
	case *ast.TypeSwitchStmt:
		return w.handleSwitch(s.Init, nil, s.Body, s.Assign)
	case *ast.SelectStmt:
		terminated := len(s.Body.List) > 0
		for _, clause := range s.Body.List {
			cc := clause.(*ast.CommClause)
			branch := w.fork()
			if cc.Comm != nil {
				branch.stmt(cc.Comm)
			}
			if !branch.stmts(cc.Body) {
				w.s.merge(branch.s)
				terminated = false
			}
		}
		return terminated
	case *ast.LabeledStmt:
		return w.stmt(s.Stmt)
	case *ast.IncDecStmt, *ast.EmptyStmt:
	default:
		ast.Inspect(s, func(n ast.Node) bool {
			if e, ok := n.(ast.Expr); ok {
				w.useExpr(e)
				return false
			}
			return true
		})
	}
	return false
}

func (w *walker) fork() *walker { return &walker{c: w.c, s: w.s.clone()} }

func (w *walker) handleIf(s *ast.IfStmt) bool {
	if s.Init != nil {
		w.stmt(s.Init)
	}
	w.useExpr(s.Cond)
	then := w.fork()
	thenTerm := then.stmts(s.Body.List)
	if s.Else == nil {
		if !thenTerm {
			w.s.merge(then.s)
		}
		return false
	}
	els := w.fork()
	elseTerm := els.stmt(s.Else)
	switch {
	case thenTerm && elseTerm:
		return true
	case thenTerm:
		w.s = els.s
	case elseTerm:
		w.s = then.s
	default:
		w.s = then.s
		w.s.merge(els.s)
	}
	return false
}

func (w *walker) handleSwitch(init ast.Stmt, tag ast.Expr, body *ast.BlockStmt, assign ast.Stmt) bool {
	if init != nil {
		w.stmt(init)
	}
	w.useExpr(tag)
	hasDefault := false
	allTerminate := len(body.List) > 0
	merged := false
	pre := w.s
	w.s = pre.clone()
	for _, clause := range body.List {
		cc, ok := clause.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			hasDefault = true
		}
		branch := &walker{c: w.c, s: pre.clone()}
		if assign != nil {
			branch.stmt(assign)
		}
		if !branch.stmts(cc.Body) {
			allTerminate = false
			if !merged {
				w.s = branch.s
				merged = true
			} else {
				w.s.merge(branch.s)
			}
		}
	}
	if !hasDefault {
		if merged {
			w.s.merge(pre)
		} else {
			w.s = pre
		}
		return false
	}
	if !merged {
		w.s = pre
	}
	return allTerminate
}

// handleReturn treats returned pooled buffers as ownership transfers and
// reports every remaining live acquisition as a leak on this path.
func (w *walker) handleReturn(s *ast.ReturnStmt) {
	returned := map[ref]bool{}
	for _, r := range s.Results {
		ast.Inspect(r, func(n ast.Node) bool {
			if e, ok := n.(ast.Expr); ok {
				if rf, ok := w.refOf(e); ok {
					returned[rf] = true
					if root, ok := w.s.alias[rf]; ok {
						returned[root] = true
					}
				}
			}
			// A Get in the return value itself also transfers ownership.
			if call, ok := n.(*ast.CallExpr); ok && w.c.isGetCall(call) {
				return false
			}
			return true
		})
	}
	w.reportLeaks(s.Pos(), returned)
}

func (w *walker) reportLeaks(pos token.Pos, returned map[ref]bool) {
	for rf, getPos := range w.s.live {
		if w.s.deferred[rf] || returned[rf] {
			continue
		}
		w.c.pass.Reportf(pos, "pooled buffer %s (acquired at line %d) is not put on this return path",
			rf.name(), w.c.pass.Fset.Position(getPos).Line)
	}
}

// handleAssign tracks acquisitions, aliases, and escapes on the right-hand
// sides, keyed by the left-hand targets.
func (w *walker) handleAssign(s *ast.AssignStmt) {
	if len(s.Lhs) == len(s.Rhs) {
		for i, rhs := range s.Rhs {
			w.assignOne(s.Lhs[i], rhs)
		}
		return
	}
	// Multi-value assignment from one call: no pooled tracking across
	// tuple returns, but the RHS may still capture tracked buffers.
	for _, rhs := range s.Rhs {
		w.useExpr(rhs)
	}
}

func (w *walker) assignOne(lhs, rhs ast.Expr) {
	rhs = unparen(rhs)

	// v := pool.GetX(n) or v := pool.GetX(n)[:0]
	if call, ok := unwrapGetExpr(rhs); ok && w.c.isGetCall(call) {
		if rf, ok := w.refOf(lhs); ok {
			w.s.live[rf] = call.Pos()
			delete(w.s.put, rf)
			return
		}
		w.c.pass.Reportf(call.Pos(), "pooled Get result is neither stored in a trackable variable nor returned; the buffer can never be put")
		return
	}

	// w := writer{buf: pool.GetBytes(n)} / enc := &encoder{codes: pool.GetInt32(n)[:0]}
	if lit := compositeLit(rhs); lit != nil {
		if target, ok := lhs.(*ast.Ident); ok {
			obj := w.objOf(target)
			tracked := false
			for _, elt := range lit.Elts {
				kv, ok := elt.(*ast.KeyValueExpr)
				if !ok {
					continue
				}
				key, ok := kv.Key.(*ast.Ident)
				if !ok {
					continue
				}
				if call, ok := unwrapGetExpr(unparen(kv.Value)); ok && w.c.isGetCall(call) {
					if obj != nil {
						w.s.live[ref{obj, key.Name}] = call.Pos()
						tracked = true
						continue
					}
					w.c.pass.Reportf(call.Pos(), "pooled Get result is neither stored in a trackable variable nor returned; the buffer can never be put")
					continue
				}
				// A tracked buffer stored in a composite literal escapes
				// into whatever the literal becomes.
				w.escapeRefsIn(kv.Value)
			}
			if tracked {
				return
			}
		}
		w.useExpr(rhs)
		return
	}

	// bits := scratch[:n] — remember the alias so a put through it is caught.
	if se, ok := rhs.(*ast.SliceExpr); ok {
		if root, ok := w.trackedRef(se.X); ok {
			if a, ok := w.refOf(lhs); ok {
				w.s.alias[a] = root
				return
			}
		}
	}

	// other := kept — custody moves to a second name the walker cannot
	// follow reliably; drop tracking rather than risk a false leak report.
	if rf, ok := w.refOf(rhs); ok {
		if root, isAlias := w.s.alias[rf]; isAlias {
			rf = root
		}
		if _, isLive := w.s.live[rf]; isLive {
			if lhsRef, ok := w.refOf(lhs); !ok || lhsRef != rf {
				w.s.untrack(rf)
			}
			return
		}
	}

	// Reassigning a tracked holder through an expression keeps it live only
	// if the old buffer still flows through the RHS (the append-growth
	// idiom `buf = append(buf, …)`); a plain overwrite loses the handle,
	// which stays live so the loss is reported at the next return.
	w.useExpr(rhs)
}

func (w *walker) handleDecl(s *ast.DeclStmt) {
	gd, ok := s.Decl.(*ast.GenDecl)
	if !ok {
		return
	}
	for _, spec := range gd.Specs {
		vs, ok := spec.(*ast.ValueSpec)
		if !ok || len(vs.Values) != len(vs.Names) {
			continue
		}
		for i, v := range vs.Values {
			w.assignOne(vs.Names[i], v)
		}
	}
}

// handleExpr processes an expression statement: put calls release buffers,
// anything else is scanned for escapes.
func (w *walker) handleExpr(e ast.Expr) {
	e = unparen(e)
	if call, ok := e.(*ast.CallExpr); ok && w.c.isPutCall(call) {
		w.handlePut(call, false)
		return
	}
	w.useExpr(e)
}

// handlePut validates one release. deferredCtx marks puts inside a defer,
// which are safe on every exit path.
func (w *walker) handlePut(call *ast.CallExpr, deferredCtx bool) {
	if len(call.Args) == 0 {
		return
	}
	arg := unparen(call.Args[0])

	if se, ok := arg.(*ast.SliceExpr); ok {
		if root, ok := w.trackedRef(se.X); ok {
			w.c.pass.Reportf(call.Pos(), "put of a reslice of pooled buffer %s; put the originally acquired slice", root.name())
			return
		}
	}
	rf, ok := w.refOf(arg)
	if !ok {
		return
	}
	if root, isAlias := w.s.alias[rf]; isAlias {
		w.c.pass.Reportf(call.Pos(), "put of %s, a reslice alias of pooled buffer %s; put the original", rf.name(), root.name())
		return
	}
	_, isLive := w.s.live[rf]
	if !isLive && w.s.put[rf] {
		w.c.pass.Reportf(call.Pos(), "double put of pooled buffer %s", rf.name())
		return
	}
	if !isLive && w.s.deferred[rf] {
		w.c.pass.Reportf(call.Pos(), "put of pooled buffer %s that is already put by a defer", rf.name())
		return
	}
	if deferredCtx {
		w.s.deferred[rf] = true
	} else {
		w.s.put[rf] = true
	}
	delete(w.s.live, rf)
}

// handleDefer credits puts performed by deferred calls — directly or inside
// a deferred closure — to every exit path.
func (w *walker) handleDefer(s *ast.DeferStmt) {
	if w.c.isPutCall(s.Call) {
		w.handlePut(s.Call, true)
		return
	}
	if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok && w.c.isPutCall(call) {
				w.handlePut(call, true)
				return false
			}
			return true
		})
		return
	}
	w.escapeRefsIn(s.Call)
}

// useExpr scans an expression for events that end the function's custody of
// a tracked buffer: capture by a (non-deferred) function literal, storage
// into a composite literal, address-taking, or an unassigned Get call. Plain
// reads — including passing the slice to a call — keep custody with the
// caller, matching the pool contract that whoever Gets must Put.
func (w *walker) useExpr(e ast.Expr) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			w.escapeRefsIn(n.Body)
			return false
		case *ast.CompositeLit:
			for _, elt := range n.Elts {
				w.escapeRefsIn(elt)
			}
			return false
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				w.escapeRefsIn(n.X)
				return false
			}
		case *ast.CallExpr:
			if w.c.isGetCall(n) {
				w.c.pass.Reportf(n.Pos(), "pooled Get result is neither stored in a trackable variable nor returned; the buffer can never be put")
				return false
			}
			if w.c.isPutCall(n) {
				w.handlePut(n, false)
				return false
			}
		}
		return true
	})
}

// escapeRefsIn drops custody of every tracked buffer referenced in the
// subtree: the reference now lives beyond this function's control flow.
func (w *walker) escapeRefsIn(n ast.Node) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(m ast.Node) bool {
		if id, ok := m.(*ast.Ident); ok {
			if obj := w.objOf(id); obj != nil {
				w.s.untrackObj(obj)
			}
		}
		return true
	})
}

// refOf resolves an expression to a tracked holder: a plain identifier or a
// field selector on a local variable.
func (w *walker) refOf(e ast.Expr) (ref, bool) {
	switch e := unparen(e).(type) {
	case *ast.Ident:
		if obj := w.objOf(e); obj != nil {
			if _, isVar := obj.(*types.Var); isVar {
				return ref{obj, ""}, true
			}
		}
	case *ast.SelectorExpr:
		base, ok := unparen(e.X).(*ast.Ident)
		if !ok {
			return ref{}, false
		}
		obj := w.objOf(base)
		if obj == nil {
			return ref{}, false
		}
		if _, isVar := obj.(*types.Var); !isVar {
			return ref{}, false
		}
		// Only field selections count; method values resolve elsewhere.
		if sel, ok := w.c.pass.TypesInfo.Selections[e]; ok && sel.Kind() != types.FieldVal {
			return ref{}, false
		}
		return ref{obj, e.Sel.Name}, true
	}
	return ref{}, false
}

// trackedRef resolves e to a currently tracked ref (live, put, or deferred),
// following one level of aliasing.
func (w *walker) trackedRef(e ast.Expr) (ref, bool) {
	rf, ok := w.refOf(e)
	if !ok {
		return ref{}, false
	}
	if root, isAlias := w.s.alias[rf]; isAlias {
		rf = root
	}
	if _, ok := w.s.live[rf]; ok {
		return rf, true
	}
	if w.s.put[rf] || w.s.deferred[rf] {
		return rf, true
	}
	return ref{}, false
}

func (w *walker) objOf(id *ast.Ident) types.Object {
	if obj := w.c.pass.TypesInfo.Uses[id]; obj != nil {
		return obj
	}
	return w.c.pass.TypesInfo.Defs[id]
}

// unwrapGetExpr strips the reslice-at-acquisition idiom pool.GetX(n)[:0]
// down to the underlying call.
func unwrapGetExpr(e ast.Expr) (*ast.CallExpr, bool) {
	e = unparen(e)
	if se, ok := e.(*ast.SliceExpr); ok {
		e = unparen(se.X)
	}
	call, ok := e.(*ast.CallExpr)
	return call, ok
}

// unparen strips any number of enclosing parentheses. (ast.Unparen arrived
// in Go 1.22; this module still builds at 1.21.)
func unparen(e ast.Expr) ast.Expr {
	for {
		pe, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = pe.X
	}
}

// compositeLit unwraps plain and address-of composite literals.
func compositeLit(e ast.Expr) *ast.CompositeLit {
	e = unparen(e)
	if ue, ok := e.(*ast.UnaryExpr); ok && ue.Op == token.AND {
		e = unparen(ue.X)
	}
	lit, _ := e.(*ast.CompositeLit)
	return lit
}
