// Package a exercises poolcheck: each function is one lifecycle scenario,
// flagged lines carry want comments, and the rest must stay silent.
package a

import "fraz/internal/pool"

// --- correct lifecycles: no diagnostics ---

func putBeforeReturn(n int) int {
	buf := pool.GetBytes(n)
	s := len(buf)
	pool.PutBytes(buf)
	return s
}

func deferredPut(n int) int {
	buf := pool.GetFloat64(n)
	defer pool.PutFloat64(buf)
	return len(buf)
}

func deferredClosurePut(n int) int {
	kept := pool.GetBytes(n)[:0]
	planes := pool.GetBytes(n)[:0]
	defer func() {
		pool.PutBytes(kept)
		pool.PutBytes(planes)
	}()
	kept = append(kept, 1)
	planes = append(planes, 2)
	return len(kept) + len(planes)
}

func ownershipByReturn(n int) []byte {
	buf := pool.GetBytes(n)
	return buf
}

func getInReturn(n int) []byte {
	return pool.GetBytes(n)
}

func doneGuard(n int, fail bool) ([]float32, error) {
	out := pool.GetFloat32(n)
	done := false
	defer func() {
		if !done {
			pool.PutFloat32(out)
		}
	}()
	if fail {
		return nil, errFail
	}
	done = true
	return out, nil
}

func putOnBothBranches(n int, cond bool) int {
	buf := pool.GetUint32(n)
	if cond {
		pool.PutUint32(buf)
		return 1
	}
	pool.PutUint32(buf)
	return 0
}

type writer struct {
	buf []byte
}

func structFieldLifecycle(n int) int {
	w := writer{buf: pool.GetBytes(n)[:0]}
	w.buf = append(w.buf, 0xAB)
	s := len(w.buf)
	pool.PutBytes(w.buf)
	return s
}

// getFloats / putFloats mirror the sz kernels' generic pool bridges; the
// checker must classify them as wrappers so calls count as gets and puts.

func getFloats(n int) []float64 { return pool.GetFloat64(n) }

func putFloats(s []float64) { pool.PutFloat64(s) }

func viaWrappers(n int) float64 {
	recon := getFloats(n)
	defer putFloats(recon)
	return recon[0]
}

func escapeToClosure(n int) func() {
	buf := pool.GetBytes(n)
	return func() { pool.PutBytes(buf) } // custody leaves with the closure
}

func custodyTransfer(n int) []byte {
	buf := pool.GetBytes(n)
	other := buf // the second name owns it now; tracking stops
	return other
}

// --- violations ---

func leakOnEarlyReturn(n int) ([]byte, error) {
	buf := pool.GetBytes(n)
	if n > 1024 {
		return nil, errFail // want `pooled buffer buf \(acquired at line \d+\) is not put on this return path`
	}
	pool.PutBytes(buf)
	return nil, nil
}

func leakOnFallthrough(n int) {
	buf := pool.GetFloat64(n)
	buf[0] = 1
} // want `pooled buffer buf \(acquired at line \d+\) is not put on this return path`

func leakOneBranchMissing(n int, cond bool) int {
	buf := pool.GetBytes(n)
	if cond {
		pool.PutBytes(buf)
	}
	return n // want `pooled buffer buf \(acquired at line \d+\) is not put on this return path`
}

func doublePut(n int) {
	buf := pool.GetBytes(n)
	pool.PutBytes(buf)
	pool.PutBytes(buf) // want `double put of pooled buffer buf`
}

func putAfterDefer(n int) {
	buf := pool.GetUint64(n)
	defer pool.PutUint64(buf)
	pool.PutUint64(buf) // want `put of pooled buffer buf that is already put by a defer`
}

func putOfReslice(n int) {
	buf := pool.GetBytes(n)
	pool.PutBytes(buf[:4]) // want `put of a reslice of pooled buffer buf`
	pool.PutBytes(buf)
}

func putOfAlias(n int) {
	buf := pool.GetUint32(n)
	bits := buf[:n/2]
	pool.PutUint32(bits) // want `put of bits, a reslice alias of pooled buffer buf`
	pool.PutUint32(buf)
}

func unassignedGet(n int) {
	pool.GetBytes(n) // want `pooled Get result is neither stored in a trackable variable nor returned`
}

var errFail = errOf("fail")

type errOf string

func (e errOf) Error() string { return string(e) }
