package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os/exec"
	"path/filepath"
	"sort"
)

// Package is one loaded, type-checked package.
type Package struct {
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// listEntry is the slice of `go list -json` output the loader needs.
type listEntry struct {
	Dir        string
	ImportPath string
	GoFiles    []string
}

// Load enumerates the packages matching the go-list patterns (e.g. "./...")
// and type-checks each from source. Imports — including the repository's own
// packages — resolve through the standard library's source importer, which
// shells out to the go command, so Load must run with a working directory
// inside the module. Only non-test files are loaded: the invariants frazlint
// checks live on production paths, and test files routinely break them on
// purpose to prove error handling works.
func Load(patterns ...string) ([]*Package, error) {
	args := append([]string{"list", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("analysis: go list %v: %v: %s", patterns, err, stderr.Bytes())
	}
	var entries []listEntry
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var e listEntry
		if err := dec.Decode(&e); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decoding go list output: %w", err)
		}
		if len(e.GoFiles) > 0 {
			entries = append(entries, e)
		}
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].ImportPath < entries[j].ImportPath })

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "source", nil)
	pkgs := make([]*Package, 0, len(entries))
	for _, e := range entries {
		files := make([]string, len(e.GoFiles))
		for i, f := range e.GoFiles {
			files[i] = filepath.Join(e.Dir, f)
		}
		pkg, err := check(fset, imp, e.ImportPath, e.Dir, files)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// LoadDir parses and type-checks the .go files of a single directory as one
// package under the given import path. It is the entry point the
// analysistest harness uses for testdata packages, which `go list` ignores
// by design.
func LoadDir(dir, importPath string) (*Package, error) {
	fset := token.NewFileSet()
	parsed, err := parser.ParseDir(fset, dir, nil, parser.ParseComments)
	if err != nil {
		return nil, fmt.Errorf("analysis: parsing %s: %w", dir, err)
	}
	if len(parsed) != 1 {
		names := make([]string, 0, len(parsed))
		for n := range parsed {
			names = append(names, n)
		}
		return nil, fmt.Errorf("analysis: %s holds %d packages %v, want exactly 1", dir, len(parsed), names)
	}
	var files []*ast.File
	var names []string
	for _, p := range parsed {
		for n := range p.Files {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			files = append(files, p.Files[n])
		}
	}
	imp := importer.ForCompiler(fset, "source", nil)
	return checkFiles(fset, imp, importPath, dir, files)
}

func check(fset *token.FileSet, imp types.Importer, importPath, dir string, filenames []string) (*Package, error) {
	files := make([]*ast.File, len(filenames))
	for i, fn := range filenames {
		f, err := parser.ParseFile(fset, fn, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: parsing %s: %w", fn, err)
		}
		files[i] = f
	}
	return checkFiles(fset, imp, importPath, dir, files)
}

func checkFiles(fset *token.FileSet, imp types.Importer, importPath, dir string, files []*ast.File) (*Package, error) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", importPath, err)
	}
	return &Package{Dir: dir, Fset: fset, Files: files, Types: tpkg, Info: info}, nil
}
