// Package mgard implements a pure-Go multilevel (multigrid-style) lossy
// compressor modelled on MGARD (Ainsworth, Tugluk, Whitney, Klasky), the
// third back end evaluated by the paper.
//
// The compressor performs a hierarchical-surplus decomposition on a tensor
// grid: the grid nodes are partitioned into dyadic levels, and each "detail"
// node stores the difference between its value and the multilinear
// interpolation of its neighbouring coarser-level nodes. The multilevel
// coefficients are then uniformly quantized with a level-aware step chosen
// so that the requested norm bound is respected after reconstruction, and
// entropy coded with Huffman + DEFLATE.
//
// Two error-control modes are provided, mirroring MGARD's norms discussed in
// the paper (§II-A3): NormInfinity (equivalent to an absolute error bound)
// and NormL2 (controls the mean squared error).
//
// Like the MGARD release used in the paper, only 2-D and 3-D data are
// supported; the paper excludes the 1-D HACC and EXAALT datasets from its
// MGARD runs for the same reason.
package mgard

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"fraz/internal/grid"
	"fraz/internal/huffman"
	"fraz/internal/quantize"
)

// magic32 and magic64 identify MGARD-Go streams of float32 and float64
// data. The element width is part of the magic, so a stream can never be
// decoded at the wrong precision — and float32 streams keep the exact bytes
// earlier builds wrote.
const (
	magic32 = 0x4D475231 // "MGR1"
	magic64 = 0x4D475232 // "MGR2"
)

// magicFor returns the stream magic for element type T.
func magicFor[T grid.Float]() uint32 {
	if grid.ElemSize[T]() == 4 {
		return magic32
	}
	return magic64
}

// unpredictable marks coefficients stored verbatim.
const unpredictable = int32(1 << 30)

// Norm selects the error-control norm.
type Norm uint8

const (
	// NormInfinity bounds the maximum absolute pointwise error.
	NormInfinity Norm = iota
	// NormL2 bounds the mean squared error of the reconstruction.
	NormL2
)

// String returns the norm name used in experiment tables.
func (n Norm) String() string {
	switch n {
	case NormInfinity:
		return "infinity"
	case NormL2:
		return "l2"
	default:
		return fmt.Sprintf("norm(%d)", uint8(n))
	}
}

// Options configures compression.
type Options struct {
	// Norm selects the error-control norm.
	Norm Norm
	// Bound is the norm bound: the maximum absolute error for NormInfinity,
	// or the maximum mean squared error for NormL2. Must be > 0.
	Bound float64
}

// ErrInvalidInput is returned for malformed data or options.
var ErrInvalidInput = errors.New("mgard: invalid input")

// ErrCorrupt is returned by Decompress for unparsable streams.
var ErrCorrupt = errors.New("mgard: corrupt stream")

// ErrUnsupportedRank is returned for 1-D or 4-D inputs.
var ErrUnsupportedRank = errors.New("mgard: only 2-D and 3-D data are supported")

// Compress compresses the field under the options' norm bound.
func Compress[T grid.Float](data []T, shape grid.Dims, opts Options) ([]byte, error) {
	if err := shape.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrInvalidInput, err)
	}
	if len(data) != shape.Len() {
		return nil, fmt.Errorf("%w: data length %d does not match shape %v", ErrInvalidInput, len(data), shape)
	}
	nd := shape.NDims()
	if nd != 2 && nd != 3 {
		return nil, ErrUnsupportedRank
	}
	if !(opts.Bound > 0) || math.IsInf(opts.Bound, 0) || math.IsNaN(opts.Bound) {
		return nil, fmt.Errorf("%w: bound must be positive and finite, got %v", ErrInvalidInput, opts.Bound)
	}
	if opts.Norm != NormInfinity && opts.Norm != NormL2 {
		return nil, fmt.Errorf("%w: unknown norm %d", ErrInvalidInput, opts.Norm)
	}

	levels := numLevels(shape)
	step := coefficientBound(opts, levels)

	// Forward multilevel decomposition on a float64 working copy.
	work := make([]float64, len(data))
	for i, v := range data {
		work[i] = float64(v)
	}
	forwardDecompose(work, shape, levels)

	// Quantize the multilevel coefficients.
	q, err := quantize.NewWithIntervals(step, quantize.DefaultIntervals)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrInvalidInput, err)
	}
	codes := make([]int32, len(work))
	literals := make([]T, 0)
	for i, c := range work {
		code, recon, ok := q.Quantize(c, 0)
		if !ok {
			codes[i] = unpredictable
			literals = append(literals, T(c))
			continue
		}
		codes[i] = code
		work[i] = recon
	}

	huffBytes, err := huffman.Encode(codes)
	if err != nil {
		return nil, fmt.Errorf("mgard: huffman stage: %w", err)
	}

	var payload bytes.Buffer
	writeUint32(&payload, uint32(len(huffBytes)))
	payload.Write(huffBytes)
	writeUint32(&payload, uint32(len(literals)))
	writeLiterals(&payload, literals)

	body := payload.Bytes()
	var comp bytes.Buffer
	fw, err := flate.NewWriter(&comp, flate.BestSpeed)
	if err != nil {
		return nil, fmt.Errorf("mgard: dictionary stage: %w", err)
	}
	if _, err := fw.Write(body); err != nil {
		return nil, fmt.Errorf("mgard: dictionary stage: %w", err)
	}
	if err := fw.Close(); err != nil {
		return nil, fmt.Errorf("mgard: dictionary stage: %w", err)
	}
	dictFlag := byte(0)
	if comp.Len() < len(body) {
		body = comp.Bytes()
		dictFlag = 1
	}

	var out bytes.Buffer
	writeUint32(&out, magicFor[T]())
	out.WriteByte(byte(opts.Norm))
	out.WriteByte(dictFlag)
	out.WriteByte(byte(nd))
	writeUint64(&out, math.Float64bits(step))
	for _, d := range shape {
		writeUint32(&out, uint32(d))
	}
	out.Write(body)
	return out.Bytes(), nil
}

// Decompress reconstructs the field from a stream produced by Compress. If
// shape is non-nil it is validated against the header.
func Decompress[T grid.Float](buf []byte, shape grid.Dims) ([]T, error) {
	if len(buf) < 4+3+8 {
		return nil, ErrCorrupt
	}
	switch binary.LittleEndian.Uint32(buf[0:4]) {
	case magicFor[T]():
	case magic32, magic64:
		return nil, fmt.Errorf("%w: stream element width does not match caller's %d-byte elements", ErrCorrupt, grid.ElemSize[T]())
	default:
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	dictFlag := buf[5]
	nd := int(buf[6])
	if nd != 2 && nd != 3 {
		return nil, fmt.Errorf("%w: bad rank %d", ErrCorrupt, nd)
	}
	step := math.Float64frombits(binary.LittleEndian.Uint64(buf[7:15]))
	if !(step > 0) {
		return nil, fmt.Errorf("%w: bad quantization step %v", ErrCorrupt, step)
	}
	pos := 15
	if len(buf) < pos+4*nd {
		return nil, ErrCorrupt
	}
	hdrShape := make(grid.Dims, nd)
	for i := 0; i < nd; i++ {
		hdrShape[i] = int(binary.LittleEndian.Uint32(buf[pos : pos+4]))
		pos += 4
	}
	if err := hdrShape.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	if shape != nil && !hdrShape.Equal(shape) {
		return nil, fmt.Errorf("%w: shape mismatch: stream has %v, caller expects %v", ErrCorrupt, hdrShape, shape)
	}

	body := buf[pos:]
	if dictFlag == 1 {
		fr := flate.NewReader(bytes.NewReader(body))
		raw, err := io.ReadAll(fr)
		if err != nil {
			return nil, fmt.Errorf("%w: inflate: %v", ErrCorrupt, err)
		}
		fr.Close()
		body = raw
	}
	rd := bytes.NewReader(body)
	huffBytes, err := readChunk(rd)
	if err != nil {
		return nil, err
	}
	numLit, err := readUint32(rd)
	if err != nil {
		return nil, err
	}
	literals, err := readLiterals[T](rd, int(numLit))
	if err != nil {
		return nil, err
	}
	codes, err := huffman.Decode(huffBytes)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	if len(codes) != hdrShape.Len() {
		return nil, fmt.Errorf("%w: code count %d does not match shape %v", ErrCorrupt, len(codes), hdrShape)
	}

	q, err := quantize.NewWithIntervals(step, quantize.DefaultIntervals)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	work := make([]float64, len(codes))
	litPos := 0
	for i, code := range codes {
		if code == unpredictable {
			if litPos >= len(literals) {
				return nil, fmt.Errorf("%w: literal stream exhausted", ErrCorrupt)
			}
			work[i] = float64(literals[litPos])
			litPos++
			continue
		}
		work[i] = q.Dequantize(0, code)
	}

	levels := numLevels(hdrShape)
	inverseReconstruct(work, hdrShape, levels)

	out := make([]T, len(work))
	for i, v := range work {
		out[i] = T(v)
	}
	return out, nil
}

// numLevels returns the number of dyadic refinement levels for the shape:
// enough that the coarsest grid has at most two nodes along the longest
// dimension.
func numLevels(shape grid.Dims) int {
	maxExtent := 0
	for _, d := range shape {
		if d > maxExtent {
			maxExtent = d
		}
	}
	levels := 0
	for (1 << (levels + 1)) < maxExtent {
		levels++
	}
	if levels < 1 {
		levels = 1
	}
	return levels
}

// coefficientBound converts the user-facing norm bound into the per-
// coefficient quantization bound. For the infinity norm, reconstruction
// errors accumulate along at most levels+1 hierarchy steps (a detail node's
// error is its own quantization error plus the interpolated error of its
// coarser parents, whose interpolation weights sum to one), so dividing the
// bound by levels+1 bounds the float64 reconstruction error; the final
// float32 cast can at most double the pointwise error (the original is a
// float32, so rounding the float64 reconstruction to the nearest float32
// moves it by no more than its distance to the original), which the extra
// factor of one half absorbs. For the L2 (MSE) norm, quantization errors
// behave like uniform noise of variance step²/3 amplified by the same
// hierarchy depth, so the step is derived from the MSE budget accordingly.
func coefficientBound(opts Options, levels int) float64 {
	depth := float64(levels + 1)
	switch opts.Norm {
	case NormL2:
		return 0.5 * math.Sqrt(3*opts.Bound) / depth
	default:
		return 0.5 * opts.Bound / depth
	}
}

// forwardDecompose converts grid values into hierarchical-surplus
// coefficients in place, processing levels from fine to coarse.
func forwardDecompose(work []float64, shape grid.Dims, levels int) {
	for l := 0; l < levels; l++ {
		s := 1 << l
		forEachDetailNode(shape, s, func(off int, pred float64) {
			work[off] -= pred
		}, work)
	}
}

// inverseReconstruct converts hierarchical-surplus coefficients back into
// grid values in place, processing levels from coarse to fine.
func inverseReconstruct(work []float64, shape grid.Dims, levels int) {
	for l := levels - 1; l >= 0; l-- {
		s := 1 << l
		forEachDetailNode(shape, s, func(off int, pred float64) {
			work[off] += pred
		}, work)
	}
}

// forEachDetailNode visits every detail node of the level with stride s: a
// grid node whose coordinates are all multiples of s with at least one being
// an odd multiple. For each such node it computes the multilinear
// interpolation of the surrounding coarse (stride 2s) nodes and invokes fn.
//
// The interpolation reads from work, so the caller must arrange the level
// processing order such that coarse nodes hold the correct values (original
// values during decomposition, reconstructed values during reconstruction).
func forEachDetailNode(shape grid.Dims, s int, fn func(off int, pred float64), work []float64) {
	nd := shape.NDims()
	strides := shape.Strides()
	coords := make([]int, nd)
	var visit func(dim int)
	visit = func(dim int) {
		if dim == nd {
			// Check that at least one coordinate is an odd multiple of s.
			odd := false
			for k := 0; k < nd; k++ {
				if (coords[k]/s)%2 == 1 {
					odd = true
					break
				}
			}
			if !odd {
				return
			}
			off := 0
			for k := 0; k < nd; k++ {
				off += coords[k] * strides[k]
			}
			fn(off, interpolate(work, shape, strides, coords, s))
			return
		}
		for c := 0; c < shape[dim]; c += s {
			coords[dim] = c
			visit(dim + 1)
		}
	}
	visit(0)
}

// interpolate computes the multilinear interpolation of the coarse-grid
// neighbours of the detail node at coords. Along each dimension where the
// coordinate is an odd multiple of s, the neighbours are at coord-s and
// coord+s with weight 1/2 each; if coord+s falls outside the grid, the
// left neighbour gets full weight. Dimensions whose coordinate is already a
// multiple of 2s contribute the node's own coordinate.
func interpolate(work []float64, shape grid.Dims, strides []int, coords []int, s int) float64 {
	nd := len(coords)
	type axisChoice struct {
		offs    [2]int
		weights [2]float64
		n       int
	}
	var axes [3]axisChoice
	for k := 0; k < nd; k++ {
		c := coords[k]
		if (c/s)%2 == 0 {
			axes[k] = axisChoice{offs: [2]int{c, 0}, weights: [2]float64{1, 0}, n: 1}
			continue
		}
		lo := c - s
		hi := c + s
		if hi >= shape[k] {
			axes[k] = axisChoice{offs: [2]int{lo, 0}, weights: [2]float64{1, 0}, n: 1}
			continue
		}
		axes[k] = axisChoice{offs: [2]int{lo, hi}, weights: [2]float64{0.5, 0.5}, n: 2}
	}
	var sum float64
	switch nd {
	case 2:
		for a := 0; a < axes[0].n; a++ {
			for b := 0; b < axes[1].n; b++ {
				w := axes[0].weights[a] * axes[1].weights[b]
				sum += w * work[axes[0].offs[a]*strides[0]+axes[1].offs[b]*strides[1]]
			}
		}
	default:
		for a := 0; a < axes[0].n; a++ {
			for b := 0; b < axes[1].n; b++ {
				for c := 0; c < axes[2].n; c++ {
					w := axes[0].weights[a] * axes[1].weights[b] * axes[2].weights[c]
					sum += w * work[axes[0].offs[a]*strides[0]+axes[1].offs[b]*strides[1]+axes[2].offs[c]*strides[2]]
				}
			}
		}
	}
	return sum
}

func writeUint32(w *bytes.Buffer, v uint32) {
	var tmp [4]byte
	binary.LittleEndian.PutUint32(tmp[:], v)
	w.Write(tmp[:])
}

func writeUint64(w *bytes.Buffer, v uint64) {
	var tmp [8]byte
	binary.LittleEndian.PutUint64(tmp[:], v)
	w.Write(tmp[:])
}

// writeLiterals appends the unpredictable coefficients' raw IEEE-754 bits:
// 4 bytes per element for float32 streams, 8 for float64, so double-
// precision coefficients survive the literal path without rounding.
func writeLiterals[T grid.Float](w *bytes.Buffer, literals []T) {
	if grid.ElemSize[T]() == 4 {
		for _, v := range literals {
			writeUint32(w, math.Float32bits(float32(v)))
		}
		return
	}
	for _, v := range literals {
		writeUint64(w, math.Float64bits(float64(v)))
	}
}

// readLiterals is the inverse of writeLiterals.
func readLiterals[T grid.Float](r *bytes.Reader, n int) ([]T, error) {
	out := make([]T, n)
	if grid.ElemSize[T]() == 4 {
		for i := range out {
			v, err := readUint32(r)
			if err != nil {
				return nil, err
			}
			out[i] = T(math.Float32frombits(v))
		}
		return out, nil
	}
	for i := range out {
		v, err := readUint64(r)
		if err != nil {
			return nil, err
		}
		out[i] = T(math.Float64frombits(v))
	}
	return out, nil
}

func readUint64(r *bytes.Reader) (uint64, error) {
	var tmp [8]byte
	if _, err := io.ReadFull(r, tmp[:]); err != nil {
		return 0, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return binary.LittleEndian.Uint64(tmp[:]), nil
}

func readUint32(r *bytes.Reader) (uint32, error) {
	var tmp [4]byte
	if _, err := io.ReadFull(r, tmp[:]); err != nil {
		return 0, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return binary.LittleEndian.Uint32(tmp[:]), nil
}

func readChunk(r *bytes.Reader) ([]byte, error) {
	n, err := readUint32(r)
	if err != nil {
		return nil, err
	}
	if int(n) > r.Len() {
		return nil, fmt.Errorf("%w: chunk length %d exceeds remaining %d", ErrCorrupt, n, r.Len())
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return buf, nil
}
