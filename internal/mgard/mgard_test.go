package mgard

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"fraz/internal/grid"
	"fraz/internal/metrics"
)

func field3D(nz, ny, nx int, seed int64) ([]float32, grid.Dims) {
	shape := grid.MustDims(nz, ny, nx)
	data := make([]float32, shape.Len())
	rng := rand.New(rand.NewSource(seed))
	i := 0
	for z := 0; z < nz; z++ {
		for y := 0; y < ny; y++ {
			for x := 0; x < nx; x++ {
				v := 30*math.Sin(float64(x)/9)*math.Cos(float64(y)/7) + 10*math.Cos(float64(z)/3)
				v += 0.05 * rng.NormFloat64()
				data[i] = float32(v)
				i++
			}
		}
	}
	return data, shape
}

func field2D(ny, nx int, seed int64) ([]float32, grid.Dims) {
	shape := grid.MustDims(ny, nx)
	data := make([]float32, shape.Len())
	rng := rand.New(rand.NewSource(seed))
	for i := range data {
		y, x := i/nx, i%nx
		data[i] = float32(100*math.Sin(float64(x)/15)*math.Sin(float64(y)/11) + 0.1*rng.NormFloat64())
	}
	return data, shape
}

func infRoundTrip(t *testing.T, data []float32, shape grid.Dims, bound float64) []float32 {
	t.Helper()
	comp, err := Compress(data, shape, Options{Norm: NormInfinity, Bound: bound})
	if err != nil {
		t.Fatalf("Compress: %v", err)
	}
	dec, err := Decompress[float32](comp, shape)
	if err != nil {
		t.Fatalf("Decompress: %v", err)
	}
	if maxErr := metrics.MaxAbsError(data, dec); maxErr > bound {
		t.Fatalf("infinity norm violated: maxErr=%v > bound=%v (shape %v)", maxErr, bound, shape)
	}
	return dec
}

func TestForwardInverseDecomposeIsExact(t *testing.T) {
	data, shape := field2D(33, 47, 1)
	work := make([]float64, len(data))
	for i, v := range data {
		work[i] = float64(v)
	}
	levels := numLevels(shape)
	forwardDecompose(work, shape, levels)
	inverseReconstruct(work, shape, levels)
	for i := range data {
		if math.Abs(work[i]-float64(data[i])) > 1e-9 {
			t.Fatalf("transform round trip not exact at %d: %v vs %v", i, work[i], data[i])
		}
	}
}

func TestForwardDecomposeShrinksDetailCoefficients(t *testing.T) {
	// On smooth data the detail coefficients should be much smaller than
	// the data values, which is what makes the multilevel transform useful.
	data, shape := field2D(65, 65, 2)
	work := make([]float64, len(data))
	var origEnergy float64
	for i, v := range data {
		work[i] = float64(v)
		origEnergy += math.Abs(float64(v))
	}
	forwardDecompose(work, shape, numLevels(shape))
	var coeffEnergy float64
	for _, c := range work {
		coeffEnergy += math.Abs(c)
	}
	if coeffEnergy > origEnergy/2 {
		t.Errorf("decomposition should concentrate energy: coeff L1=%v orig L1=%v", coeffEnergy, origEnergy)
	}
}

func TestInfinityNorm3D(t *testing.T) {
	data, shape := field3D(15, 18, 21, 3)
	for _, bound := range []float64{1, 0.1, 1e-3} {
		infRoundTrip(t, data, shape, bound)
	}
}

func TestInfinityNorm2D(t *testing.T) {
	data, shape := field2D(50, 70, 4)
	for _, bound := range []float64{5, 0.01} {
		infRoundTrip(t, data, shape, bound)
	}
}

func TestInfinityNormOddShapes(t *testing.T) {
	shapes := []grid.Dims{
		grid.MustDims(2, 2),
		grid.MustDims(3, 5),
		grid.MustDims(17, 1),
		grid.MustDims(2, 3, 5),
		grid.MustDims(9, 1, 9),
	}
	rng := rand.New(rand.NewSource(6))
	for _, shape := range shapes {
		data := make([]float32, shape.Len())
		for i := range data {
			data[i] = rng.Float32() * 50
		}
		infRoundTrip(t, data, shape, 0.05)
	}
}

func TestL2NormControlsMSE(t *testing.T) {
	data, shape := field3D(20, 20, 20, 7)
	for _, mseBound := range []float64{1e-2, 1e-4} {
		comp, err := Compress(data, shape, Options{Norm: NormL2, Bound: mseBound})
		if err != nil {
			t.Fatal(err)
		}
		dec, err := Decompress[float32](comp, shape)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := metrics.Evaluate(data, dec, len(comp), 4)
		if err != nil {
			t.Fatal(err)
		}
		if rep.MSE > mseBound {
			t.Errorf("MSE %v exceeds bound %v", rep.MSE, mseBound)
		}
	}
}

func TestLooserBoundCompressesBetter(t *testing.T) {
	data, shape := field3D(24, 24, 24, 8)
	tight, err := Compress(data, shape, Options{Norm: NormInfinity, Bound: 1e-4})
	if err != nil {
		t.Fatal(err)
	}
	loose, err := Compress(data, shape, Options{Norm: NormInfinity, Bound: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	if len(loose) >= len(tight) {
		t.Errorf("looser bound should compress better: %d vs %d", len(loose), len(tight))
	}
}

func TestCompressionRatioReasonable(t *testing.T) {
	data, shape := field2D(128, 128, 9)
	comp, err := Compress(data, shape, Options{Norm: NormInfinity, Bound: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	cr := metrics.CompressionRatio(len(data)*4, len(comp))
	if cr < 3 {
		t.Errorf("smooth 2-D data at bound 0.5 should exceed 3:1, got %.2f", cr)
	}
}

func TestUnsupportedRank(t *testing.T) {
	if _, err := Compress(make([]float32, 8), grid.MustDims(8), Options{Norm: NormInfinity, Bound: 1}); err != ErrUnsupportedRank {
		t.Errorf("1-D should return ErrUnsupportedRank, got %v", err)
	}
	if _, err := Compress(make([]float32, 16), grid.MustDims(2, 2, 2, 2), Options{Norm: NormInfinity, Bound: 1}); err != ErrUnsupportedRank {
		t.Errorf("4-D should return ErrUnsupportedRank, got %v", err)
	}
}

func TestInvalidOptions(t *testing.T) {
	data := make([]float32, 4)
	shape := grid.MustDims(2, 2)
	if _, err := Compress(data, shape, Options{Norm: NormInfinity, Bound: 0}); err == nil {
		t.Errorf("zero bound should fail")
	}
	if _, err := Compress(data, shape, Options{Norm: NormInfinity, Bound: math.NaN()}); err == nil {
		t.Errorf("NaN bound should fail")
	}
	if _, err := Compress(data, shape, Options{Norm: Norm(5), Bound: 1}); err == nil {
		t.Errorf("unknown norm should fail")
	}
	if _, err := Compress(data, grid.MustDims(3, 3), Options{Norm: NormInfinity, Bound: 1}); err == nil {
		t.Errorf("shape mismatch should fail")
	}
}

func TestDecompressCorrupt(t *testing.T) {
	if _, err := Decompress[float32]([]byte{0, 1, 2}, nil); err == nil {
		t.Errorf("short buffer should fail")
	}
	data, shape := field2D(10, 10, 10)
	comp, err := Compress(data, shape, Options{Norm: NormInfinity, Bound: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	bad := append([]byte(nil), comp...)
	bad[1] ^= 0xFF
	if _, err := Decompress[float32](bad, shape); err == nil {
		t.Errorf("bad magic should fail")
	}
	if _, err := Decompress[float32](comp, grid.MustDims(9, 10)); err == nil {
		t.Errorf("shape mismatch should fail")
	}
	if _, err := Decompress[float32](comp, nil); err != nil {
		t.Errorf("nil shape should use header shape: %v", err)
	}
}

func TestNormString(t *testing.T) {
	if NormInfinity.String() != "infinity" || NormL2.String() != "l2" {
		t.Errorf("unexpected norm names")
	}
	if Norm(9).String() == "" {
		t.Errorf("unknown norm string should not be empty")
	}
}

func TestNumLevels(t *testing.T) {
	cases := []struct {
		shape grid.Dims
		want  int
	}{
		{grid.MustDims(2, 2), 1},
		{grid.MustDims(4, 4), 1},
		{grid.MustDims(5, 5), 2},
		{grid.MustDims(64, 64), 5},
		{grid.MustDims(65, 65), 6},
		{grid.MustDims(100, 3, 3), 6},
	}
	for _, c := range cases {
		if got := numLevels(c.shape); got != c.want {
			t.Errorf("numLevels(%v) = %d, want %d", c.shape, got, c.want)
		}
	}
}

func TestPropertyInfinityBoundHolds(t *testing.T) {
	f := func(seed int64, boundExp uint8, useThreeD bool) bool {
		rng := rand.New(rand.NewSource(seed))
		var shape grid.Dims
		if useThreeD {
			shape = grid.MustDims(7, 6, 9)
		} else {
			shape = grid.MustDims(21, 17)
		}
		data := make([]float32, shape.Len())
		for i := range data {
			data[i] = float32(40*math.Sin(float64(i)/17) + rng.NormFloat64())
		}
		bound := math.Pow(10, -float64(boundExp%5))
		comp, err := Compress(data, shape, Options{Norm: NormInfinity, Bound: bound})
		if err != nil {
			return false
		}
		dec, err := Decompress[float32](comp, shape)
		if err != nil {
			return false
		}
		return metrics.MaxAbsError(data, dec) <= bound
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func BenchmarkCompressInfinity3D(b *testing.B) {
	data, shape := field3D(64, 64, 64, 1)
	b.SetBytes(int64(len(data) * 4))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Compress(data, shape, Options{Norm: NormInfinity, Bound: 1e-2}); err != nil {
			b.Fatal(err)
		}
	}
}
