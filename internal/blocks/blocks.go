// Package blocks decomposes an N-dimensional buffer into independent
// sub-buffers along its slowest-varying axis, the decomposition behind the
// blocked `.fraz` container (format v2) and the parallel seal/open path.
//
// Splitting along the slowest axis only — rather than into the small cubic
// cells the compressors themselves use internally — keeps every block
// contiguous in the row-major flat array, so "extracting" a block is a
// zero-copy subslice and reassembly after decompression is a sequential
// copy. Each block is a complete N-d field in its own right (same rank,
// same fast-axis extents), which is what lets the existing compressors run
// on a block unchanged; this is the same layout trick SZx's fixed-size
// block pipeline and FZ-GPU's block-parallel kernels use to turn one big
// compression into many independent small ones.
//
// The decomposition is deterministic: Plan(shape, n) always produces the
// same blocks for the same inputs, so a reader can reconstruct every
// block's shape and element offset from just the container's overall shape
// and block count.
package blocks

import (
	"errors"
	"fmt"

	"fraz/internal/grid"
)

// ErrBadPlan is returned (wrapped) when a decomposition request is invalid.
var ErrBadPlan = errors.New("blocks: invalid block plan")

// Block is one contiguous sub-buffer of a larger field: the elements
// data[Start : Start+Shape.Len()] of the flat row-major array, interpreted
// with the block's own (rank-preserving) shape.
type Block struct {
	// Index is the block's position in the plan, in slowest-axis order.
	Index int
	// Start is the block's element offset into the flat source array.
	Start int
	// Shape is the block's logical shape: the source shape with the
	// slowest-axis extent reduced to this block's share.
	Shape grid.Dims
}

// Len returns the number of elements in the block.
func (b Block) Len() int { return b.Shape.Len() }

// Plan splits shape into n contiguous blocks along the slowest axis,
// distributing the remainder one row at a time over the leading blocks, so
// block extents never differ by more than one row (shape-aware remainder
// handling — a 10-row field split 4 ways yields 3+3+2+2, not 3+3+3+1).
// n is clamped to the slowest-axis extent (a 3-row field cannot be split 8
// ways); n <= 1 yields a single block covering the whole field.
func Plan(shape grid.Dims, n int) ([]Block, error) {
	if err := shape.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadPlan, err)
	}
	if n < 1 {
		n = 1
	}
	if n > shape[0] {
		n = shape[0]
	}
	rowLen := 1
	for _, e := range shape[1:] {
		rowLen *= e
	}
	base, rem := shape[0]/n, shape[0]%n
	plan := make([]Block, n)
	start := 0
	for i := range plan {
		rows := base
		if i < rem {
			rows++
		}
		sub := shape.Clone()
		sub[0] = rows
		plan[i] = Block{Index: i, Start: start, Shape: sub}
		start += rows * rowLen
	}
	return plan, nil
}

// Slice returns the block's sub-buffer as a zero-copy subslice of the flat
// source array, which must hold exactly the plan's source shape.
func Slice[T grid.Float](data []T, b Block) ([]T, error) {
	end := b.Start + b.Len()
	if b.Start < 0 || end > len(data) {
		return nil, fmt.Errorf("%w: block %d spans [%d,%d) of %d elements", ErrBadPlan, b.Index, b.Start, end, len(data))
	}
	return data[b.Start:end], nil
}

// Scatter copies a block's decompressed elements back into place in the
// destination array. src must hold exactly the block's element count.
func Scatter[T grid.Float](dst []T, b Block, src []T) error {
	if len(src) != b.Len() {
		return fmt.Errorf("%w: block %d holds %d elements, source has %d", ErrBadPlan, b.Index, b.Len(), len(src))
	}
	end := b.Start + b.Len()
	if b.Start < 0 || end > len(dst) {
		return fmt.Errorf("%w: block %d spans [%d,%d) of %d elements", ErrBadPlan, b.Index, b.Start, end, len(dst))
	}
	copy(dst[b.Start:end], src)
	return nil
}

// DefaultCount suggests a block count for a shape: enough blocks to keep
// `workers` cores busy with a little slack for stragglers (2 blocks per
// worker), clamped to the slowest-axis extent by Plan. A non-positive
// worker count yields 1 (monolithic).
func DefaultCount(shape grid.Dims, workers int) int {
	if workers <= 0 {
		return 1
	}
	n := 2 * workers
	if len(shape) > 0 && n > shape[0] {
		n = shape[0]
	}
	if n < 1 {
		n = 1
	}
	return n
}
