package blocks

import (
	"errors"
	"testing"
	"testing/quick"

	"fraz/internal/grid"
)

func TestPlanRemainderDistribution(t *testing.T) {
	// 10 rows over 4 blocks: 3+3+2+2, never 3+3+3+1.
	plan, err := Plan(grid.MustDims(10, 5), 4)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{3, 3, 2, 2}
	if len(plan) != len(want) {
		t.Fatalf("got %d blocks, want %d", len(plan), len(want))
	}
	start := 0
	for i, b := range plan {
		if b.Shape[0] != want[i] {
			t.Errorf("block %d has %d rows, want %d", i, b.Shape[0], want[i])
		}
		if b.Shape[1] != 5 {
			t.Errorf("block %d fast axis %d, want 5", i, b.Shape[1])
		}
		if b.Start != start {
			t.Errorf("block %d starts at %d, want %d", i, b.Start, start)
		}
		if b.Index != i {
			t.Errorf("block %d reports index %d", i, b.Index)
		}
		start += b.Len()
	}
	if start != 50 {
		t.Errorf("blocks cover %d elements, want 50", start)
	}
}

func TestPlanClampsAndDegenerateCounts(t *testing.T) {
	// More blocks than rows: clamp to the slowest extent.
	plan, err := Plan(grid.MustDims(3, 4), 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan) != 3 {
		t.Errorf("got %d blocks, want 3 (clamped to slowest axis)", len(plan))
	}
	// n <= 1 is a single monolithic block.
	for _, n := range []int{1, 0, -5} {
		plan, err := Plan(grid.MustDims(6, 2), n)
		if err != nil {
			t.Fatal(err)
		}
		if len(plan) != 1 || plan[0].Start != 0 || plan[0].Len() != 12 {
			t.Errorf("Plan(n=%d) = %+v, want one full block", n, plan)
		}
	}
	if _, err := Plan(nil, 4); !errors.Is(err, ErrBadPlan) {
		t.Errorf("nil shape: err = %v, want ErrBadPlan", err)
	}
}

func TestSliceAndScatterBounds(t *testing.T) {
	data := make([]float32, 12)
	bad := Block{Index: 0, Start: 8, Shape: grid.MustDims(2, 4)}
	if _, err := Slice(data, bad); !errors.Is(err, ErrBadPlan) {
		t.Errorf("out-of-range Slice: err = %v, want ErrBadPlan", err)
	}
	if err := Scatter(data, bad, make([]float32, 8)); !errors.Is(err, ErrBadPlan) {
		t.Errorf("out-of-range Scatter: err = %v, want ErrBadPlan", err)
	}
	ok := Block{Index: 0, Start: 4, Shape: grid.MustDims(2, 4)}
	if err := Scatter(data, ok, make([]float32, 3)); !errors.Is(err, ErrBadPlan) {
		t.Errorf("short source Scatter: err = %v, want ErrBadPlan", err)
	}
}

// TestPropertySplitReassembleRoundTrip checks, over random 1-d/2-d/3-d odd
// shapes and block counts, that the plan partitions the buffer exactly: the
// blocks are contiguous, disjoint, cover every element, and scattering the
// slices back reproduces the original bit for bit.
func TestPropertySplitReassembleRoundTrip(t *testing.T) {
	f := func(d0s, d1s, d2s uint8, ranks, ns uint8) bool {
		rank := int(ranks%3) + 1
		extents := []int{int(d0s%31) + 1, int(d1s%13) + 1, int(d2s%7) + 1}[:rank]
		shape := grid.MustDims(extents...)
		n := int(ns%40) + 1

		data := make([]float32, shape.Len())
		for i := range data {
			data[i] = float32(i)*0.5 + 1
		}

		plan, err := Plan(shape, n)
		if err != nil {
			return false
		}
		if len(plan) > shape[0] || len(plan) < 1 {
			return false
		}
		out := make([]float32, len(data))
		covered := 0
		for i, b := range plan {
			// Contiguity and shape preservation.
			if b.Start != covered || b.Shape.NDims() != rank {
				return false
			}
			for k := 1; k < rank; k++ {
				if b.Shape[k] != shape[k] {
					return false
				}
			}
			sub, err := Slice(data, b)
			if err != nil || len(sub) != b.Len() {
				return false
			}
			// Simulate decompression producing an independent copy.
			dec := append([]float32(nil), sub...)
			if err := Scatter(out, b, dec); err != nil {
				return false
			}
			covered += b.Len()
			// Row counts differ by at most one across blocks.
			if i > 0 && abs(plan[i-1].Shape[0]-b.Shape[0]) > 1 {
				return false
			}
		}
		if covered != len(data) {
			return false
		}
		for i := range data {
			if out[i] != data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

func TestDefaultCount(t *testing.T) {
	shape := grid.MustDims(100, 10)
	if n := DefaultCount(shape, 8); n != 16 {
		t.Errorf("DefaultCount(100 rows, 8 workers) = %d, want 16", n)
	}
	if n := DefaultCount(grid.MustDims(3, 10), 8); n != 3 {
		t.Errorf("DefaultCount(3 rows, 8 workers) = %d, want 3", n)
	}
	if n := DefaultCount(shape, 0); n != 1 {
		t.Errorf("DefaultCount(0 workers) = %d, want 1", n)
	}
}
