package pool

import (
	"runtime"
	"sync"
	"testing"
)

// TestConcurrentGetPut hammers every element pool from many goroutines
// across several capacity classes at once. Each goroutine stamps its
// buffers with a value derived from its identity and re-checks the stamp
// before releasing: if two goroutines are ever handed the same backing
// array concurrently — the failure mode a broken free list produces — the
// stamps collide and the check fails. Run with -race this also proves the
// pools introduce no unsynchronized sharing.
func TestConcurrentGetPut(t *testing.T) {
	workers := 4 * runtime.GOMAXPROCS(0)
	const rounds = 300
	sizes := []int{1, 64, 100, 1000, 5000}

	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				n := sizes[(id+r)%len(sizes)]
				stampF64 := float64(id*rounds + r)
				stampU32 := uint32(id*rounds + r)

				b := GetBytes(n)
				f32 := GetFloat32(n)
				f64 := GetFloat64(n)
				u32 := GetUint32(n)
				u64 := GetUint64(n)
				i32 := GetInt32(n)

				for i := range b {
					b[i] = byte(id)
					f32[i] = float32(stampF64)
					f64[i] = stampF64
					u32[i] = stampU32
					u64[i] = uint64(stampU32)
					i32[i] = int32(id)
				}
				// A second batch of gets while the first is still held
				// forces bucket contention before the stamps are checked.
				extra := GetFloat64(n)
				for i := range extra {
					extra[i] = -stampF64
				}

				for i := range b {
					if b[i] != byte(id) || f32[i] != float32(stampF64) ||
						f64[i] != stampF64 || u32[i] != stampU32 ||
						u64[i] != uint64(stampU32) || i32[i] != int32(id) {
						t.Errorf("worker %d round %d: buffer contents changed while held — pooled slice shared between holders", id, r)
						return
					}
					if extra[i] != -stampF64 {
						t.Errorf("worker %d round %d: second buffer aliases the first", id, r)
						return
					}
				}

				PutFloat64(extra)
				PutBytes(b)
				PutFloat32(f32)
				PutFloat64(f64)
				PutUint32(u32)
				PutUint64(u64)
				PutInt32(i32)
			}
		}(g)
	}
	wg.Wait()
}
