// Package pool provides size-bucketed free lists for the scratch slices the
// hot paths burn through: per-block compressed payloads on the blocked seal
// path, per-block decode buffers on the blocked open path, container header
// staging, and codec-internal bit scratch. Each element type keeps one
// sync.Pool per power-of-two capacity class, so a Get is answered by a slice
// whose capacity is within 2x of the request and a steady-state pipeline
// recycles instead of allocating.
//
// Ownership discipline: a slice handed to Put must not be referenced again
// by the caller — the next Get may hand it to anyone. Slices returned by Get
// carry arbitrary stale contents; callers must fully overwrite the length
// they asked for. It is always safe to Put a slice that did not come from
// Get (it joins the free list) or to never Put one that did (it falls to the
// garbage collector).
package pool

import (
	"math/bits"
	"sync"
)

// minBucket and maxBucket bound the capacity classes: below 1<<minBucket
// pooling costs more than the allocation it saves, above 1<<maxBucket (64 Mi
// elements) a slice parked in a pool pins too much memory between GCs.
const (
	minBucket = 6
	maxBucket = 26
)

// slicePool is a set of sync.Pools bucketed by power-of-two capacity.
type slicePool[T any] struct {
	buckets [maxBucket + 1]sync.Pool
}

// bucketFor returns the class whose slices have capacity >= n, or -1 when n
// is outside the pooled range.
func bucketFor(n int) int {
	if n <= 0 || n > 1<<maxBucket {
		return -1
	}
	b := bits.Len(uint(n - 1)) // ceil(log2 n)
	if b < minBucket {
		b = minBucket
	}
	return b
}

// get returns a slice of length n with arbitrary contents.
func (p *slicePool[T]) get(n int) []T {
	b := bucketFor(n)
	if b < 0 {
		return make([]T, n)
	}
	if v := p.buckets[b].Get(); v != nil {
		s := v.([]T)
		return s[:n]
	}
	return make([]T, n, 1<<b)
}

// put parks a slice for reuse. Slices outside the pooled capacity range, or
// smaller than their class promises, are dropped.
func (p *slicePool[T]) put(s []T) {
	c := cap(s)
	if c < 1<<minBucket || c > 1<<maxBucket {
		return
	}
	// File under the largest class the capacity fully covers, so a get from
	// that class can always slice to its requested length.
	b := bits.Len(uint(c)) - 1 // floor(log2 c)
	p.buckets[b].Put(s[:0:c])
}

var (
	bytesPool slicePool[byte]
	f32Pool   slicePool[float32]
	f64Pool   slicePool[float64]
	u32Pool   slicePool[uint32]
	u64Pool   slicePool[uint64]
	i32Pool   slicePool[int32]
	i64Pool   slicePool[int64]
)

// GetBytes returns a byte slice of length n with arbitrary contents.
func GetBytes(n int) []byte { return bytesPool.get(n) }

// PutBytes parks a byte slice for reuse; the caller must not touch it again.
func PutBytes(s []byte) { bytesPool.put(s) }

// GetFloat32 returns a float32 slice of length n with arbitrary contents.
func GetFloat32(n int) []float32 { return f32Pool.get(n) }

// PutFloat32 parks a float32 slice for reuse.
func PutFloat32(s []float32) { f32Pool.put(s) }

// GetFloat64 returns a float64 slice of length n with arbitrary contents.
func GetFloat64(n int) []float64 { return f64Pool.get(n) }

// PutFloat64 parks a float64 slice for reuse.
func PutFloat64(s []float64) { f64Pool.put(s) }

// GetUint32 returns a uint32 slice of length n with arbitrary contents.
func GetUint32(n int) []uint32 { return u32Pool.get(n) }

// PutUint32 parks a uint32 slice for reuse.
func PutUint32(s []uint32) { u32Pool.put(s) }

// GetInt32 returns an int32 slice of length n with arbitrary contents.
func GetInt32(n int) []int32 { return i32Pool.get(n) }

// PutInt32 parks an int32 slice for reuse.
func PutInt32(s []int32) { i32Pool.put(s) }

// GetUint64 returns a uint64 slice of length n with arbitrary contents.
func GetUint64(n int) []uint64 { return u64Pool.get(n) }

// PutUint64 parks a uint64 slice for reuse.
func PutUint64(s []uint64) { u64Pool.put(s) }

// GetInt64 returns an int64 slice of length n with arbitrary contents.
func GetInt64(n int) []int64 { return i64Pool.get(n) }

// PutInt64 parks an int64 slice for reuse.
func PutInt64(s []int64) { i64Pool.put(s) }
