package pool

import "testing"

func TestGetLengthAndReuse(t *testing.T) {
	for _, n := range []int{1, 63, 64, 65, 1000, 1 << 20} {
		s := GetBytes(n)
		if len(s) != n {
			t.Fatalf("GetBytes(%d) returned length %d", n, len(s))
		}
		PutBytes(s)
	}
	// A put slice should come back for a fitting request (sync.Pool gives no
	// hard guarantee, but single-goroutine put/get without an intervening GC
	// reuses in practice; tolerate either outcome, just exercise the path).
	s := GetFloat64(100)
	s[0] = 42
	PutFloat64(s)
	r := GetFloat64(100)
	_ = r[99]
	PutFloat64(r)
}

func TestBucketFor(t *testing.T) {
	cases := map[int]int{
		-1:               -1,
		0:                -1,
		1:                minBucket,
		64:               minBucket,
		65:               7,
		128:              7,
		129:              8,
		1 << maxBucket:   maxBucket,
		1<<maxBucket + 1: -1,
	}
	for n, want := range cases {
		if got := bucketFor(n); got != want {
			t.Errorf("bucketFor(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestPutUndersizedDropped(t *testing.T) {
	// A slice below the minimum class must be dropped, not filed where a
	// larger get could receive it.
	PutBytes(make([]byte, 8))
	s := GetBytes(64)
	if len(s) != 64 {
		t.Fatalf("got length %d", len(s))
	}
	PutBytes(s)
}

func TestOutOfRangeGet(t *testing.T) {
	s := GetUint32(1<<maxBucket + 1)
	if len(s) != 1<<maxBucket+1 {
		t.Fatalf("oversized get returned length %d", len(s))
	}
}
