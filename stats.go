package fraz

import "fraz/internal/pressio"

// CacheStats is a point-in-time snapshot of an evaluation cache: how many
// tuning evaluations were answered from memory (Hits), how many had to run
// the compressor (Misses — exactly the number of compressor invocations the
// cache recorded), how many completed entries the FIFO sweep discarded to
// stay under the size cap (Evictions), and how many distinct evaluations are
// resident right now (Entries).
type CacheStats struct {
	// Hits counts evaluations served a usable result without invoking the
	// compressor, including waits on another caller's identical in-flight
	// evaluation.
	Hits uint64
	// Misses counts evaluations that invoked the compressor. Failed
	// evaluations — including waits on an in-flight evaluation that failed —
	// count here, never as hits.
	Misses uint64
	// Evictions counts completed entries discarded to stay under the cache's
	// size cap.
	Evictions uint64
	// Evaluations is the number of compressor invocations performed on the
	// cache's behalf: one per miss.
	Evaluations uint64
	// Entries is the number of distinct evaluations currently resident.
	Entries int
}

// HitRate is Hits over Hits+Misses, 0 when the cache has never been asked.
func (s CacheStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// EvalCache is a shareable evaluation cache: the memo of (codec, data
// fingerprint, quantized bound) → (ratio, size, quality report) triples that
// makes repeated tuning of the same data cheap. Every Client owns a private
// one by default; build one explicitly with NewEvalCache and pass it to
// several clients through the SharedCache option to pool their evaluations —
// the shape a long-running service wants, where many requests (even from
// different tenants) re-tune the same fields. An EvalCache is safe for
// concurrent use by any number of clients.
type EvalCache struct {
	c *pressio.Cache
}

// NewEvalCache returns an empty evaluation cache holding at most maxEntries
// completed evaluations (<= 0 selects the default, 65536). At capacity the
// oldest entries are evicted first, so a cache fed an unbounded stream of
// distinct fields holds bounded memory.
func NewEvalCache(maxEntries int) *EvalCache {
	return &EvalCache{c: pressio.NewCacheSized(maxEntries)}
}

// Stats reports the cache's cumulative hit/miss/eviction counts across every
// client sharing it.
func (e *EvalCache) Stats() CacheStats {
	return cacheStats(e.c)
}

func cacheStats(c *pressio.Cache) CacheStats {
	if c == nil {
		return CacheStats{}
	}
	hits, misses, evictions := c.Stats()
	return CacheStats{
		Hits:        hits,
		Misses:      misses,
		Evictions:   evictions,
		Evaluations: misses,
		Entries:     c.Len(),
	}
}

// Stats reports the evaluation cache behind this client's tuner: cumulative
// hits, misses (= compressor evaluations performed), and evictions. For a
// client built with SharedCache the numbers cover every client sharing the
// cache, not just this one; per-call deltas are on each CompressResult and
// TuneResult (Evaluations, CacheHits). A client without a tuning target has
// no cache and reports zeros. A CodecAuto client reports the race cache its
// per-codec sub-clients share, so the numbers cover every candidate's
// evaluations.
func (c *Client) Stats() CacheStats {
	if c.auto {
		return c.autoCache.Stats()
	}
	if c.tuner == nil {
		return CacheStats{}
	}
	return cacheStats(c.tuner.Cache())
}
