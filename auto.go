package fraz

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"

	"fraz/internal/blocks"
	"fraz/internal/core"
	"fraz/internal/pressio"
)

// This file implements the CodecAuto selection policy: the per-field codec
// race behind fraz.New(fraz.CodecAuto, ...) and Dataset. The survey
// literature the project tracks (Di et al. 2024) calls per-field codec
// choice a first-order ratio lever — SZ-style prediction wins on smooth
// fields, transform coding on oscillatory ones, SZx-style truncation on
// near-constant ones — and which codec wins is a property of each field's
// statistics, not of the dataset. The race reuses the machinery that
// already exists: candidates are pre-filtered on the registry's capability
// windows, each one is tuned on the same sampled block the blocked seal
// would tune on, and every evaluation flows through the shared evaluation
// cache, so racing N codecs costs N independent tunes on one block — and
// re-racing the same field (or sealing with the winner afterwards) is
// answered from memory.

// AutoCandidate reports one registered codec's part in a CodecAuto race.
type AutoCandidate struct {
	// Codec is the candidate's registry name.
	Codec string
	// Skipped is the reason the codec did not win: a capability-window
	// mismatch (it never raced), a tuning failure, or losing the score
	// comparison leaves it empty — only pre-filter and failure reasons are
	// recorded here; a raced loser has Skipped == "" and Feasible == true.
	Skipped string
	// Feasible reports whether the candidate reached the acceptance band on
	// the sampled block.
	Feasible bool
	// ErrorBound, Ratio, and AchievedValue describe the candidate's tuned
	// configuration on the sample (zero when the codec never raced).
	ErrorBound    float64
	Ratio         float64
	AchievedValue float64
	// Score is the selection score: the sample compression ratio for
	// quality objectives ("ratio at quality"), the measured reconstruction
	// PSNR at the tuned bound for the fixed-ratio objective ("quality at
	// ratio").
	Score float64
	// Evaluations counts compressor invocations this candidate's tune
	// performed; CacheHits of them were served from the shared cache.
	Evaluations int
	CacheHits   int
}

// AutoSelection is the outcome of one CodecAuto race: the winning codec and
// every candidate's result, in Codecs() order.
type AutoSelection struct {
	// Codec is the winner — the codec the field was (or will be) sealed
	// with.
	Codec string
	// SampleBlock is the index of the block the race tuned on.
	SampleBlock int
	// Candidates holds one entry per registered codec.
	Candidates []AutoCandidate
}

// Raced lists the candidates that actually competed (passed the capability
// pre-filter and tuned feasibly).
func (s *AutoSelection) Raced() []AutoCandidate {
	var out []AutoCandidate
	for _, c := range s.Candidates {
		if c.Skipped == "" {
			out = append(out, c)
		}
	}
	return out
}

// demoteWinner records that the current winner failed on the full field
// (the race scored it on a sampled block, which is a heuristic) and
// promotes the best remaining raced candidate. It returns the promoted
// candidate; ok is false when no raced candidate remains.
func (s *AutoSelection) demoteWinner(reason string) (AutoCandidate, bool) {
	best := -1
	bestScore := math.Inf(-1)
	for i := range s.Candidates {
		cand := &s.Candidates[i]
		if cand.Codec == s.Codec {
			cand.Skipped = reason
			cand.Feasible = false
			continue
		}
		if cand.Skipped == "" && cand.Score > bestScore {
			bestScore = cand.Score
			best = i
		}
	}
	if best < 0 {
		return AutoCandidate{}, false
	}
	s.Codec = s.Candidates[best].Codec
	return s.Candidates[best], true
}

// newAutoClient builds the CodecAuto client: no compressor or tuner of its
// own, a shared evaluation cache for the per-codec sub-clients, eager
// validation of the options that cannot combine with automatic selection.
func newAutoClient(set settings) (*Client, error) {
	if set.fixedBound > 0 {
		return nil, fmt.Errorf("fraz: FixedBound cannot combine with %s: an explicit bound has different semantics for every codec", CodecAuto)
	}
	cache := set.cache
	if cache == nil {
		cache = NewEvalCache(0)
	}
	return &Client{
		set:         set,
		info:        CodecInfo{Name: CodecAuto, BoundName: "auto-selected per field"},
		auto:        true,
		autoCache:   cache,
		autoClients: map[string]*Client{},
	}, nil
}

// autoClient returns (building on first use) the sub-client for one codec:
// the same settings, the named codec, and the race's shared cache.
func (c *Client) autoClient(name string) (*Client, error) {
	c.autoMu.Lock()
	defer c.autoMu.Unlock()
	if sub, ok := c.autoClients[name]; ok {
		return sub, nil
	}
	set := c.set
	set.codec = name
	set.cache = c.autoCache
	sub, err := newClient(set)
	if err != nil {
		return nil, err
	}
	c.autoClients[name] = sub
	return sub, nil
}

// resolveAuto races the eligible codecs on a sampled block of buf and
// returns the winner's sub-client alongside the full selection record. The
// winner's tuned bound is recorded as its sub-client's next prediction, so
// the seal that follows re-validates the bound from the cache instead of
// searching again.
func (c *Client) resolveAuto(ctx context.Context, buf pressio.Buffer) (*Client, *AutoSelection, error) {
	sel, err := c.selectCodec(ctx, buf)
	if err != nil {
		return nil, nil, err
	}
	sub, err := c.autoClient(sel.Codec)
	if err != nil {
		return nil, nil, err
	}
	return sub, sel, nil
}

// selectCodec runs the CodecAuto race on a sampled block of buf: capability
// pre-filter, one tune per surviving candidate, best ratio-at-quality wins
// (ties break toward the lexicographically first codec name, keeping
// selection deterministic).
func (c *Client) selectCodec(ctx context.Context, buf pressio.Buffer) (*AutoSelection, error) {
	if c.set.objective.Name == "" {
		return nil, fmt.Errorf("fraz: %s requires a tuning target: pass fraz.Ratio, fraz.TargetPSNR, fraz.TargetSSIM, fraz.TargetMaxError, or fraz.Target to New", CodecAuto)
	}
	quality := c.set.objective.NeedsReport
	rank := len(buf.Shape)
	dtype := buf.DType().String()

	sample, sampleBlock, err := c.sampleBlock(buf)
	if err != nil {
		return nil, err
	}

	sel := &AutoSelection{SampleBlock: sampleBlock}
	best := -1
	bestScore := math.Inf(-1)
	anyRaced := false
	var closest *core.InfeasibleError
	for _, ci := range Codecs() {
		cand := AutoCandidate{Codec: ci.Name}
		switch {
		case ci.Lossless:
			cand.Skipped = "lossless: no tunable fidelity/size trade to search"
		case !ci.SupportsRank(rank):
			cand.Skipped = fmt.Sprintf("rank window [%d,%d] excludes rank-%d data", ci.MinRank, ci.MaxRank, rank)
		case !ci.SupportsDType(dtype):
			cand.Skipped = fmt.Sprintf("element-width window excludes %s data", dtype)
		case !ci.ErrorBounded && !quality && !ci.FixedRate:
			// A fixed-rate codec is exempt: it hits the target ratio by
			// construction at zero tuning cost, and the race still scores it
			// on measured reconstruction quality, so admitting it costs one
			// cached round trip and can only improve the scoreboard.
			cand.Skipped = "not error-bounded: a fixed-ratio archive with it would carry no fidelity promise"
		}
		if cand.Skipped != "" {
			sel.Candidates = append(sel.Candidates, cand)
			continue
		}
		sub, err := c.autoClient(ci.Name)
		if err != nil {
			cand.Skipped = err.Error()
			sel.Candidates = append(sel.Candidates, cand)
			continue
		}
		res, err := sub.tuner.TuneWithPrediction(ctx, sample, sub.prediction())
		if err != nil {
			if ctx.Err() != nil {
				return nil, err
			}
			cand.Skipped = fmt.Sprintf("tuning failed: %v", err)
			sel.Candidates = append(sel.Candidates, cand)
			continue
		}
		cand.Feasible = res.Feasible
		cand.ErrorBound = res.ErrorBound
		cand.Ratio = res.AchievedRatio
		cand.AchievedValue = res.AchievedValue
		cand.Evaluations = res.Iterations
		cand.CacheHits = res.CacheHits
		if !res.Feasible {
			anyRaced = true
			cand.Skipped = "no bound reaches the acceptance band on the sample"
			if ie := infeasibleOf(res); closest == nil || ie.ClosestRatio > closest.ClosestRatio {
				closest = ie
			}
			sel.Candidates = append(sel.Candidates, cand)
			continue
		}
		score, err := c.candidateScore(sub, sample, res, quality)
		if err != nil {
			cand.Skipped = fmt.Sprintf("scoring failed: %v", err)
			sel.Candidates = append(sel.Candidates, cand)
			continue
		}
		anyRaced = true
		cand.Score = score
		sel.Candidates = append(sel.Candidates, cand)
		if score > bestScore {
			bestScore = score
			best = len(sel.Candidates) - 1
		}
	}
	if best < 0 {
		if anyRaced && closest != nil {
			// Every raced candidate tuned but missed the band: surface the
			// closest configuration the same way a single-codec tune would.
			return nil, closest
		}
		return nil, fmt.Errorf("fraz: %s found no eligible codec for rank-%d %s data (objective %s): %s",
			CodecAuto, rank, dtype, c.set.objective.Name, skipSummary(sel.Candidates))
	}
	sel.Codec = sel.Candidates[best].Codec
	if sub, err := c.autoClient(sel.Codec); err == nil {
		sub.recordBound(sel.Candidates[best].ErrorBound)
	}
	return sel, nil
}

// sampleBlock picks the block the race tunes on — the same middle block the
// blocked seal would tune on, so the winner's bound doubles as the seal's
// prediction. A shape that cannot split (or Blocks(1)) races on the whole
// field.
func (c *Client) sampleBlock(buf pressio.Buffer) (pressio.Buffer, int, error) {
	workers := c.set.workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	numBlocks := c.set.blocks
	if numBlocks <= 0 {
		numBlocks = blocks.DefaultCount(buf.Shape, workers)
	}
	plan, err := blocks.Plan(buf.Shape, numBlocks)
	if err != nil {
		return pressio.Buffer{}, 0, fmt.Errorf("fraz: %s sampling: %w", CodecAuto, err)
	}
	if len(plan) <= 1 {
		return buf, 0, nil
	}
	idx := len(plan) / 2
	sub, err := buf.Slice(plan[idx])
	if err != nil {
		return pressio.Buffer{}, 0, fmt.Errorf("fraz: %s sampling block %d: %w", CodecAuto, idx, err)
	}
	return sub, idx, nil
}

// candidateScore turns one feasible tune into the race's comparison key.
// Quality objectives already hold quality fixed, so the score is the sample
// compression ratio; the fixed-ratio objective holds size fixed, so the
// score is the measured reconstruction PSNR at the tuned bound (one cached
// round-trip evaluation per candidate).
func (c *Client) candidateScore(sub *Client, sample pressio.Buffer, res core.Result, quality bool) (float64, error) {
	if quality {
		return res.AchievedRatio, nil
	}
	eval := pressio.NewEvaluator(c.autoCache.c, sub.comp, sample)
	rep, _, err := eval.Full(res.ErrorBound)
	if err != nil {
		return 0, err
	}
	if math.IsNaN(rep.PSNR) {
		return 0, fmt.Errorf("reconstruction PSNR is NaN at bound %g", res.ErrorBound)
	}
	return rep.PSNR, nil
}

// infeasibleOf rebuilds the InfeasibleError a Result.Check would produce,
// used to report the best near-miss when every candidate fails.
func infeasibleOf(res core.Result) *core.InfeasibleError {
	err := res.Check()
	var ie *core.InfeasibleError
	if errors.As(err, &ie) {
		return ie
	}
	return &core.InfeasibleError{}
}

// skipSummary compacts the skip reasons for the no-eligible-codec error.
func skipSummary(cands []AutoCandidate) string {
	s := ""
	for i, cand := range cands {
		if i > 0 {
			s += "; "
		}
		s += fmt.Sprintf("%s: %s", cand.Codec, cand.Skipped)
	}
	return s
}
