package fraz

import (
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"
	"time"

	"fraz/internal/blocks"
	"fraz/internal/container"
	"fraz/internal/core"
	"fraz/internal/grid"
	"fraz/internal/pressio"
)

// Client is the configured entry point to the framework: one codec, one
// tuning objective (a fixed ratio, PSNR, SSIM, or max-error target), and
// the tuning/parallelism knobs set through functional options. A Client is
// safe for concurrent use; it shares one evaluation cache across all of its
// tuning runs, and (unless disabled with ReuseBounds) carries the last
// feasible error bound from one call into the next as the starting
// prediction, the paper's time-step reuse.
type Client struct {
	set  settings
	info CodecInfo
	comp pressio.Compressor

	// tuner is nil when the client was built without a tuning target (a
	// decompress-only or FixedBound-only client).
	tuner *core.Tuner

	// auto marks a CodecAuto client: comp and tuner are nil, and every
	// Compress/Tune first races the eligible codecs (through per-codec
	// sub-clients sharing autoCache) and delegates to the winner.
	auto        bool
	autoCache   *EvalCache
	autoMu      sync.Mutex
	autoClients map[string]*Client

	mu        sync.Mutex
	lastBound float64
}

// New builds a Client for the named codec (see Codecs for the registry).
// Options that take values validate eagerly, so a misconfigured client
// fails here rather than on first use:
//
//	c, err := fraz.New("sz:abs",
//		fraz.Ratio(12), fraz.Tolerance(0.05),
//		fraz.MaxError(1e-2), fraz.Blocks(8), fraz.Workers(4))
//
// Quality targets go through the same constructor:
//
//	c, err := fraz.New("sz:abs", fraz.TargetPSNR(60))
//	c, err := fraz.New("zfp:accuracy", fraz.TargetSSIM(0.95))
//
// Compress and Tune additionally require a target — Ratio, TargetPSNR,
// TargetSSIM, TargetMaxError, or Target (or FixedBound to skip tuning);
// plain Decompress needs none.
func New(codec string, opts ...Option) (*Client, error) {
	set := defaultSettings()
	set.codec = codec
	for _, opt := range opts {
		if err := opt(&set); err != nil {
			return nil, err
		}
	}
	return newClient(set)
}

func newClient(set settings) (*Client, error) {
	if set.codec == CodecAuto {
		return newAutoClient(set)
	}
	info, ok := LookupCodec(set.codec)
	if !ok {
		return nil, fmt.Errorf("%w: %q (available: %v)", ErrUnknownCodec, set.codec, codecNames())
	}
	comp, err := pressio.New(set.codec)
	if err != nil {
		return nil, wrapStreamErr(err)
	}
	c := &Client{set: set, info: info, comp: comp}
	if set.objective.Name != "" {
		obj := set.objective
		if set.tolSet {
			obj.Tolerance = set.tolerance
		}
		cache := pressio.NewCache()
		if set.cache != nil {
			cache = set.cache.c
		}
		tuner, err := core.NewTuner(comp, core.Config{
			Objective: obj,
			MaxError:  set.maxError,
			Regions:   set.regions,
			Workers:   set.workers,
			Seed:      set.seed,
			Cache:     cache,
		})
		if err != nil {
			return nil, err
		}
		c.tuner = tuner
	}
	return c, nil
}

func codecNames() []string {
	infos := Codecs()
	names := make([]string, len(infos))
	for i, ci := range infos {
		names[i] = ci.Name
	}
	return names
}

// Codec returns the descriptor of the codec this client compresses with.
func (c *Client) Codec() CodecInfo { return c.info }

// Element constrains the element types the framework compresses: IEEE-754
// single and double precision. The generic entry points (Compress,
// CompressT, TuneT, DecompressAs) accept either; the element width travels
// in the .fraz container header, so decompression recovers it without any
// out-of-band knowledge.
type Element interface {
	float32 | float64
}

// newBuffer validates a (data, shape) pair against the public contract:
// shape is slowest-dimension-first with 1–4 positive extents whose product
// is len(data).
func newBuffer[T Element](data []T, shape []int) (pressio.Buffer, error) {
	dims, err := grid.NewDims(shape...)
	if err != nil {
		return pressio.Buffer{}, fmt.Errorf("fraz: invalid shape %v: %w", shape, err)
	}
	buf, err := pressio.NewBufferOf(data, dims)
	if err != nil {
		return pressio.Buffer{}, fmt.Errorf("fraz: %d values do not fill shape %v", len(data), shape)
	}
	return buf, nil
}

// CompressResult reports what one Compress call did.
type CompressResult struct {
	// Codec is the codec name recorded in the container header.
	Codec string
	// Objective names the tuning objective the bound was searched for
	// ("ratio", "psnr", "ssim", "max-error"), Target its requested value,
	// and AchievedValue the whole-field value actually achieved (recorded
	// in the container header; equal to Ratio for the ratio objective).
	Objective     string
	Target        float64
	AchievedValue float64
	// ErrorBound is the codec parameter the field was sealed at.
	ErrorBound float64
	// Ratio is the achieved whole-field compression ratio (uncompressed
	// bytes over payload bytes), as recorded in the container header.
	Ratio float64
	// SampleRatio is the ratio achieved on the block the bound was tuned
	// on (equal to Ratio for a monolithic seal; zero with FixedBound).
	SampleRatio float64
	// Blocks is the number of independently decodable blocks written: 1
	// means a monolithic (v1) container, more a blocked (v2) one.
	Blocks int
	// SampleBlock is the index of the block the bound was tuned on.
	SampleBlock int
	// BytesWritten is the size of the container streamed to the writer.
	BytesWritten int64
	// Evaluations counts compressor invocations during tuning; CacheHits of
	// them were served from the client's evaluation cache.
	Evaluations int
	CacheHits   int
	// Direct is true when the objective was satisfied directly from codec
	// capability — a fixed-rate codec's size formula inverted into its
	// bits-per-value parameter — so tuning ran zero compressor evaluations
	// and ErrorBound holds the whole-bit rate.
	Direct bool
	// UsedPrediction is true when a previous call's bound was reused
	// without retraining.
	UsedPrediction bool
	// Elapsed is the tuning wall-clock time (excluding the final seal).
	Elapsed time.Duration
	// Selection reports the codec race a CodecAuto client ran before this
	// compression: the winner (equal to Codec) and every candidate's
	// outcome. Nil when the client names a fixed codec.
	Selection *AutoSelection
}

// Compress tunes the codec's error bound to the client's objective — the
// target ratio, or a quality target (PSNR, SSIM, max-error) — compresses
// the field at the tuned bound, and streams a self-describing .fraz
// container to w. Nothing is written unless tuning succeeds: if no bound
// reaches the acceptance band, Compress fails with an error matching
// errors.Is(err, ErrInfeasible) whose *InfeasibleError payload carries the
// closest observed configuration.
//
// data is a flat row-major field and shape its extents, slowest dimension
// first (e.g. {100, 500, 500}). With Blocks(n > 1 or the automatic
// default), a ratio-targeted bound is tuned on one sampled block and all
// blocks are compressed concurrently into a blocked container; Blocks(1)
// seals monolithically, as do quality objectives always (see Blocks).
// Quality-targeted archives additionally record the objective name, target,
// band, and achieved value in the container header.
func (c *Client) Compress(ctx context.Context, w io.Writer, data []float32, shape []int) (*CompressResult, error) {
	return CompressT(ctx, c, w, data, shape)
}

// Compress64 is Compress for double-precision fields. The container records
// dtype float64, so Decompress64 (or DecompressFull) recovers the data at
// full precision.
func (c *Client) Compress64(ctx context.Context, w io.Writer, data []float64, shape []int) (*CompressResult, error) {
	return CompressT(ctx, c, w, data, shape)
}

// CompressT is the dtype-generic form of Client.Compress: one type
// parameter selects single or double precision, and everything below it —
// tuner, codecs, container — reads the width off the buffer's dtype tag.
// (Go methods cannot take type parameters, so the generic entry point is a
// package function over the client.)
func CompressT[T Element](ctx context.Context, c *Client, w io.Writer, data []T, shape []int) (*CompressResult, error) {
	buf, err := newBuffer(data, shape)
	if err != nil {
		return nil, err
	}
	return c.compressBuffer(ctx, w, buf)
}

// compressBuffer is the dtype-agnostic core of Compress/Compress64.
func (c *Client) compressBuffer(ctx context.Context, w io.Writer, buf pressio.Buffer) (*CompressResult, error) {
	if c.auto {
		sub, sel, err := c.resolveAuto(ctx, buf)
		if err != nil {
			return nil, err
		}
		for {
			res, cerr := sub.compressBuffer(ctx, w, buf)
			if cerr == nil {
				res.Selection = sel
				return res, nil
			}
			// The race scored candidates on a sampled block, so its winner
			// can still miss the band on the whole field. Fall back to the
			// next-best raced candidate instead of surfacing the heuristic's
			// miss; infeasibility is detected before any container byte is
			// written, so retrying into the same writer is safe.
			var inf *InfeasibleError
			if !errors.As(cerr, &inf) {
				return nil, cerr
			}
			cand, ok := sel.demoteWinner(fmt.Sprintf("won the sample race but missed the band on the full field (closest ratio %.4g)", inf.ClosestRatio))
			if !ok {
				return nil, cerr
			}
			if sub, err = c.autoClient(sel.Codec); err != nil {
				return nil, err
			}
			sub.recordBound(cand.ErrorBound)
		}
	}
	if c.set.fixedBound > 0 {
		return c.compressFixed(ctx, w, buf)
	}
	if c.tuner == nil {
		return nil, fmt.Errorf("fraz: Compress requires a tuning target: pass fraz.Ratio, fraz.TargetPSNR, fraz.TargetSSIM, fraz.TargetMaxError, or fraz.FixedBound to New")
	}
	cn, sr, err := c.tuner.SealBlocked(ctx, buf, core.SealOptions{
		Blocks:          c.set.blocks,
		Workers:         c.set.workers,
		Prediction:      c.prediction(),
		RequireFeasible: true,
	})
	if err != nil {
		return nil, err
	}
	c.recordBound(sr.Tuning.ErrorBound)
	n, err := cn.WriteTo(w)
	if err != nil {
		return nil, fmt.Errorf("fraz: writing container: %w", err)
	}
	return &CompressResult{
		Codec:          cn.Header.Codec,
		Objective:      sr.Tuning.Objective,
		Target:         sr.Tuning.Target,
		AchievedValue:  sr.AchievedValue,
		ErrorBound:     cn.Header.Bound,
		Ratio:          cn.Header.Ratio,
		SampleRatio:    sr.Tuning.AchievedRatio,
		Blocks:         cn.NumBlocks(),
		SampleBlock:    sr.SampleBlock,
		BytesWritten:   n,
		Evaluations:    sr.Tuning.Iterations,
		CacheHits:      sr.Tuning.CacheHits,
		Direct:         sr.Tuning.Direct,
		UsedPrediction: sr.Tuning.UsedPrediction,
		Elapsed:        sr.Tuning.Elapsed,
	}, nil
}

// compressFixed seals at the explicit FixedBound parameter, skipping the
// tuner entirely.
func (c *Client) compressFixed(ctx context.Context, w io.Writer, buf pressio.Buffer) (*CompressResult, error) {
	workers := c.set.workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	numBlocks := c.set.blocks
	if numBlocks <= 0 {
		numBlocks = blocks.DefaultCount(buf.Shape, workers)
	}
	cn, err := pressio.SealBlocked(ctx, c.comp, buf, c.set.fixedBound, numBlocks, workers)
	if err != nil {
		return nil, err
	}
	n, err := cn.WriteTo(w)
	if err != nil {
		return nil, fmt.Errorf("fraz: writing container: %w", err)
	}
	return &CompressResult{
		Codec:        cn.Header.Codec,
		ErrorBound:   cn.Header.Bound,
		Ratio:        cn.Header.Ratio,
		Blocks:       cn.NumBlocks(),
		BytesWritten: n,
	}, nil
}

func (c *Client) prediction() float64 {
	if !c.set.reuse {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lastBound
}

func (c *Client) recordBound(bound float64) {
	if !c.set.reuse {
		return
	}
	c.mu.Lock()
	c.lastBound = bound
	c.mu.Unlock()
}

// ObjectiveRecord echoes the objective extension of a container header: the
// tuning objective an archive was sealed for, its target, the absolute
// half-width of the acceptance band, and the value the archive's bound
// actually achieved. Rebuild the objective with ObjectiveByName to
// re-measure the promise against a reference field.
type ObjectiveRecord struct {
	Name      string
	Target    float64
	Tolerance float64
	Achieved  float64
}

// InBand reports whether a value lies inside the recorded acceptance band
// [Target−Tolerance, Target+Tolerance].
func (o ObjectiveRecord) InBand(v float64) bool {
	return v >= o.Target-o.Tolerance && v <= o.Target+o.Tolerance
}

// DecompressResult couples the reconstructed field with the container
// metadata it was decoded from.
type DecompressResult struct {
	// Data is the reconstructed field, flat in row-major order, for a
	// single-precision archive; nil when the archive holds float64 data
	// (then Data64 is set — exactly one of the two is non-nil).
	Data []float32
	// Data64 is the reconstructed field of a double-precision archive.
	Data64 []float64
	// DType names the archived element type: "float32" or "float64".
	DType string
	// Shape is the field's extents, slowest dimension first.
	Shape []int
	// Codec, ErrorBound, and Ratio echo the container header: the codec the
	// payload was compressed with, the bound it was sealed at, and the
	// ratio it achieved.
	Codec      string
	ErrorBound float64
	Ratio      float64
	// Objective is the archive's recorded tuning promise, nil when the
	// archive predates the extension or was sealed for a plain ratio
	// target (whose promise lives in Ratio).
	Objective *ObjectiveRecord
	// CompressedBytes is the size of the compressed payload (the container's
	// payload area, excluding header and index overhead) — the denominator
	// of the recorded ratio.
	CompressedBytes int
	// Version is the container format version (1 monolithic, 2 blocked).
	Version int
	// Blocks is the number of independently verified and decoded blocks.
	Blocks int
}

// Decompress reads one .fraz container from r and reconstructs the field.
// Everything needed — codec, bound, shape, element type — comes from the
// stream's own header; the client's codec plays no part. Streams that are
// not valid containers fail with ErrCorrupt; headers naming an unregistered
// codec fail with ErrUnknownCodec. Double-precision archives fail here with
// a typed-width error — use Decompress64 (or DecompressFull, which carries
// either width) for those.
func (c *Client) Decompress(ctx context.Context, r io.Reader) ([]float32, []int, error) {
	res, err := c.DecompressFull(ctx, r)
	if err != nil {
		return nil, nil, err
	}
	if res.Data == nil {
		return nil, nil, fmt.Errorf("fraz: archive holds %s data; use Decompress64 or DecompressFull", res.DType)
	}
	return res.Data, res.Shape, nil
}

// Decompress64 is Decompress for double-precision archives; it fails with a
// typed-width error on float32 archives so precision is never silently
// widened.
func (c *Client) Decompress64(ctx context.Context, r io.Reader) ([]float64, []int, error) {
	res, err := c.DecompressFull(ctx, r)
	if err != nil {
		return nil, nil, err
	}
	if res.Data64 == nil {
		return nil, nil, fmt.Errorf("fraz: archive holds %s data; use Decompress or DecompressFull", res.DType)
	}
	return res.Data64, res.Shape, nil
}

// DecompressFull is Decompress plus the container metadata: the codec the
// stream was sealed with, the tuned bound (an error guarantee when the
// codec is error-bounded), the achieved ratio, and the block layout.
func (c *Client) DecompressFull(ctx context.Context, r io.Reader) (*DecompressResult, error) {
	return decompress(ctx, r, c.set.workers)
}

func decompress(ctx context.Context, r io.Reader, workers int) (*DecompressResult, error) {
	var cn container.Container
	if _, err := cn.ReadFrom(r); err != nil {
		return nil, wrapStreamErr(err)
	}
	return decompressContainer(ctx, cn, workers)
}

// decompressContainer turns one decoded container into a DecompressResult —
// the tail of the Decompress path, shared with Dataset field reads (whose
// containers come out of an archive directory rather than a stream).
func decompressContainer(ctx context.Context, cn container.Container, workers int) (*DecompressResult, error) {
	buf, err := pressio.OpenBlocked(ctx, cn, workers)
	if err != nil {
		return nil, wrapStreamErr(err)
	}
	res := &DecompressResult{
		Data:            buf.Float32(),
		Data64:          buf.Float64(),
		DType:           buf.DType().String(),
		Shape:           []int(buf.Shape),
		Codec:           cn.Header.Codec,
		ErrorBound:      cn.Header.Bound,
		Ratio:           cn.Header.Ratio,
		CompressedBytes: len(cn.Payload),
		Version:         int(cn.Header.Version),
		Blocks:          cn.NumBlocks(),
	}
	if o := cn.Header.Objective; o.Name != "" {
		res.Objective = &ObjectiveRecord{
			Name:      o.Name,
			Target:    o.Target,
			Tolerance: o.Tolerance,
			Achieved:  o.Achieved,
		}
	}
	return res, nil
}

// TuneResult is the outcome of tuning one field without sealing it.
type TuneResult struct {
	// Codec is the tuned codec's name.
	Codec string
	// Objective names the tuning objective, Target its requested value, and
	// AchievedValue the value reached at ErrorBound (equal to Ratio for the
	// ratio objective).
	Objective     string
	Target        float64
	AchievedValue float64
	// ErrorBound is the recommended codec parameter.
	ErrorBound float64
	// Ratio is the compression ratio achieved at ErrorBound, whatever the
	// objective.
	Ratio float64
	// CompressedSize is the compressed size in bytes at ErrorBound.
	CompressedSize int
	// Feasible reports whether AchievedValue lies inside the acceptance
	// band. An infeasible result still describes the closest observed
	// configuration; Err turns it into an ErrInfeasible error.
	Feasible bool
	// UsedPrediction is true when a previous call's bound was reused
	// without retraining.
	UsedPrediction bool
	// Evaluations counts compressor invocations; CacheHits of them were
	// served from the client's evaluation cache.
	Evaluations int
	CacheHits   int
	// Direct is true when the objective was satisfied directly from codec
	// capability with zero evaluations (see CompressResult.Direct).
	Direct bool
	// Elapsed is the tuning wall-clock time.
	Elapsed time.Duration
	// Selection reports the codec race a CodecAuto client ran before this
	// tune. Nil when the client names a fixed codec.
	Selection *AutoSelection

	targetRatio float64
	tolerance   float64
}

// Err returns nil for a feasible result and an error matching
// errors.Is(err, ErrInfeasible) — with the closest observed configuration
// in its *InfeasibleError — otherwise.
func (r *TuneResult) Err() error {
	return tuneCore(*r).Check()
}

func tuneResult(res core.Result) *TuneResult {
	return &TuneResult{
		Codec:          res.Compressor,
		Objective:      res.Objective,
		Target:         res.Target,
		AchievedValue:  res.AchievedValue,
		ErrorBound:     res.ErrorBound,
		Ratio:          res.AchievedRatio,
		CompressedSize: res.CompressedSize,
		Feasible:       res.Feasible,
		UsedPrediction: res.UsedPrediction,
		Evaluations:    res.Iterations,
		CacheHits:      res.CacheHits,
		Direct:         res.Direct,
		Elapsed:        res.Elapsed,
		targetRatio:    res.TargetRatio,
		tolerance:      res.Tolerance,
	}
}

// tuneCore rebuilds the slice of core.Result that Result.Check needs from a
// public TuneResult.
func tuneCore(r TuneResult) core.Result {
	return core.Result{
		Compressor:     r.Codec,
		Objective:      r.Objective,
		Target:         r.Target,
		AchievedValue:  r.AchievedValue,
		TargetRatio:    r.targetRatio,
		Tolerance:      r.tolerance,
		ErrorBound:     r.ErrorBound,
		AchievedRatio:  r.Ratio,
		CompressedSize: r.CompressedSize,
		Feasible:       r.Feasible,
	}
}

// Tune searches the codec's error-bound range for the client's target ratio
// without compressing a container: the fixed-ratio search alone, for
// callers that apply the bound through their own pipeline. Unlike Compress,
// an infeasible outcome is returned as data — Feasible false, with the
// closest observed configuration — because a caller inspecting a search
// result can act on "how close did it get"; use TuneResult.Err (or
// Compress) where only an in-band result is acceptable.
func (c *Client) Tune(ctx context.Context, data []float32, shape []int) (*TuneResult, error) {
	return TuneT(ctx, c, data, shape)
}

// Tune64 is Tune for double-precision fields.
func (c *Client) Tune64(ctx context.Context, data []float64, shape []int) (*TuneResult, error) {
	return TuneT(ctx, c, data, shape)
}

// TuneT is the dtype-generic form of Client.Tune, mirroring CompressT.
func TuneT[T Element](ctx context.Context, c *Client, data []T, shape []int) (*TuneResult, error) {
	if c.tuner == nil && !c.auto {
		return nil, fmt.Errorf("fraz: Tune requires a tuning target: pass fraz.Ratio, fraz.TargetPSNR, fraz.TargetSSIM, fraz.TargetMaxError, or fraz.Target to New")
	}
	buf, err := newBuffer(data, shape)
	if err != nil {
		return nil, err
	}
	if c.auto {
		sub, sel, err := c.resolveAuto(ctx, buf)
		if err != nil {
			return nil, err
		}
		for {
			res, terr := sub.tuner.TuneWithPrediction(ctx, buf, sub.prediction())
			if terr != nil {
				return nil, terr
			}
			if !res.Feasible {
				// Same fallback as compressBuffer: the sample race's winner
				// missed the band on the full field, so promote the runner-up.
				cand, ok := sel.demoteWinner(fmt.Sprintf("won the sample race but missed the band on the full field (closest ratio %.4g)", infeasibleOf(res).ClosestRatio))
				if ok {
					if sub, err = c.autoClient(sel.Codec); err != nil {
						return nil, err
					}
					sub.recordBound(cand.ErrorBound)
					continue
				}
			}
			if res.Feasible {
				sub.recordBound(res.ErrorBound)
			}
			tr := tuneResult(res)
			tr.Selection = sel
			return tr, nil
		}
	}
	res, err := c.tuner.TuneWithPrediction(ctx, buf, c.prediction())
	if err != nil {
		return nil, err
	}
	if res.Feasible {
		c.recordBound(res.ErrorBound)
	}
	return tuneResult(res), nil
}

// Series describes one field's time series through a lazy provider, so a
// whole dataset never needs to be resident at once. At is called with step
// indices 0..Steps-1 and returns the field's data and shape at that step.
type Series struct {
	// Name labels the series in results, e.g. "Hurricane/CLOUDf".
	Name string
	// Steps is the number of time-steps.
	Steps int
	// At returns the field at time-step i.
	At func(i int) (data []float32, shape []int, err error)
}

// SeriesResult aggregates the tuning of one field across its time-steps.
type SeriesResult struct {
	// Name echoes the series label.
	Name string
	// Steps holds one result per time-step, in order.
	Steps []TuneResult
	// Retrains counts the steps that required a full search because the
	// previous step's bound missed the band (the first step always does).
	Retrains int
	// ConvergedSteps counts steps whose final ratio landed in the band.
	ConvergedSteps int
	// Evaluations totals the compressor invocations across all steps;
	// CacheHits of them were served from the client's evaluation cache.
	Evaluations int
	CacheHits   int
	// Elapsed is the total wall-clock tuning time.
	Elapsed time.Duration
}

// TuneSeries tunes every time-step of one field, reusing each step's bound
// as the next step's prediction and retraining only when the data drifts
// out of the acceptance band (the paper's Algorithm 3, inner loop).
func (c *Client) TuneSeries(ctx context.Context, s Series) (*SeriesResult, error) {
	if c.auto {
		return nil, fmt.Errorf("fraz: TuneSeries does not support %s — codec selection is per-field (tune fields individually, or build a Dataset with AppendStep)", CodecAuto)
	}
	if c.tuner == nil {
		return nil, fmt.Errorf("fraz: TuneSeries requires a tuning target: pass fraz.Ratio (or another Target option) to New")
	}
	res, err := c.tuner.TuneSeries(ctx, coreSeries(s))
	if err != nil {
		return nil, err
	}
	return seriesResult(res), nil
}

// TuneFields tunes several field series concurrently, bounded by Workers
// (the paper's Algorithm 3, outer loop). Results are positional: result i
// belongs to series[i].
func (c *Client) TuneFields(ctx context.Context, series []Series) ([]*SeriesResult, error) {
	if c.auto {
		return nil, fmt.Errorf("fraz: TuneFields does not support %s — codec selection is per-field (tune fields individually, or build a Dataset with AppendStep)", CodecAuto)
	}
	if c.tuner == nil {
		return nil, fmt.Errorf("fraz: TuneFields requires a tuning target: pass fraz.Ratio (or another Target option) to New")
	}
	cs := make([]core.Series, len(series))
	for i, s := range series {
		cs[i] = coreSeries(s)
	}
	res, err := c.tuner.TuneFields(ctx, cs)
	out := make([]*SeriesResult, len(res))
	for i := range res {
		out[i] = seriesResult(res[i])
	}
	if err != nil {
		return out, err
	}
	return out, nil
}

func coreSeries(s Series) core.Series {
	return core.Series{
		Field: s.Name,
		Steps: s.Steps,
		At: func(i int) (pressio.Buffer, error) {
			data, shape, err := s.At(i)
			if err != nil {
				return pressio.Buffer{}, err
			}
			return newBuffer(data, shape)
		},
	}
}

func seriesResult(res core.SeriesResult) *SeriesResult {
	out := &SeriesResult{
		Name:           res.Field,
		Retrains:       res.Retrains,
		ConvergedSteps: res.ConvergedSteps,
		Evaluations:    res.TotalIterations,
		CacheHits:      res.CacheHits,
		Elapsed:        res.Elapsed,
	}
	out.Steps = make([]TuneResult, len(res.Steps))
	for i, st := range res.Steps {
		out.Steps[i] = *tuneResult(st.Result)
	}
	return out
}

// Compress is the one-shot form of Client.Compress: it builds a throwaway
// client from the options (Codec selects the compressor, default
// DefaultCodec) and streams one tuned .fraz container to w. It is generic
// over the element type — pass a []float32 or []float64 field and the
// container records the width:
//
//	_, err := fraz.Compress(ctx, f, data, []int{100, 500, 500},
//		fraz.Ratio(10), fraz.Codec("zfp:accuracy"))
func Compress[T Element](ctx context.Context, w io.Writer, data []T, shape []int, opts ...Option) (*CompressResult, error) {
	set := defaultSettings()
	set.codec = DefaultCodec
	for _, opt := range opts {
		if err := opt(&set); err != nil {
			return nil, err
		}
	}
	c, err := newClient(set)
	if err != nil {
		return nil, err
	}
	return CompressT(ctx, c, w, data, shape)
}

// Decompress is the one-shot inverse for single-precision archives: it
// reads one .fraz container from r and reconstructs the field and its
// shape. No options are needed — the stream header carries the codec,
// bound, shape, and element type. Double-precision archives fail with a
// typed-width error; use DecompressAs[float64] or DecompressFull.
func Decompress(ctx context.Context, r io.Reader) ([]float32, []int, error) {
	return DecompressAs[float32](ctx, r)
}

// DecompressAs is the dtype-explicit one-shot inverse: the archive's
// recorded element type must match T, so precision is never silently
// narrowed or widened.
func DecompressAs[T Element](ctx context.Context, r io.Reader) ([]T, []int, error) {
	res, err := decompress(ctx, r, 0)
	if err != nil {
		return nil, nil, err
	}
	var want T
	if _, ok := any(want).(float32); ok {
		if res.Data == nil {
			return nil, nil, fmt.Errorf("fraz: archive holds %s data; use DecompressAs[float64] or DecompressFull", res.DType)
		}
		return any(res.Data).([]T), res.Shape, nil
	}
	if res.Data64 == nil {
		return nil, nil, fmt.Errorf("fraz: archive holds %s data; use DecompressAs[float32] or DecompressFull", res.DType)
	}
	return any(res.Data64).([]T), res.Shape, nil
}

// DecompressFull is the one-shot form of Client.DecompressFull, returning
// the container metadata alongside the reconstructed field. Options other
// than Workers are ignored.
func DecompressFull(ctx context.Context, r io.Reader, opts ...Option) (*DecompressResult, error) {
	set := defaultSettings()
	for _, opt := range opts {
		if err := opt(&set); err != nil {
			return nil, err
		}
	}
	return decompress(ctx, r, set.workers)
}
