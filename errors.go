package fraz

import (
	"errors"
	"fmt"

	"fraz/internal/container"
	"fraz/internal/core"
	"fraz/internal/pressio"
)

// ErrInfeasible reports that no error bound in the admissible range reaches
// the target compression ratio within the tolerance. Compress fails with it
// (writing nothing), and TuneResult.Err returns it for infeasible tunes.
// Match with errors.Is; errors.As on *InfeasibleError recovers the closest
// configuration the search observed, so callers can decide whether to relax
// the tolerance, raise MaxError, or switch codecs.
var ErrInfeasible = core.ErrInfeasible

// InfeasibleError carries the closest observed configuration of an
// infeasible tune: the achieved ratio nearest the target, the bound that
// produced it, and its compressed size.
type InfeasibleError = core.InfeasibleError

// ErrUnknownCodec reports a codec name that is not in the registry — from
// New with a misspelled name, or from Decompress on a stream whose header
// names a codec this build does not carry. Codecs lists what is available.
var ErrUnknownCodec = errors.New("fraz: unknown codec")

// ErrCorrupt reports a stream that is not a decodable .fraz container: bad
// magic, a header field out of range, a truncated payload, a CRC mismatch,
// or a format version newer than this build reads.
var ErrCorrupt = errors.New("fraz: invalid or corrupt .fraz stream")

// wrapStreamErr maps internal container and registry failures onto the
// package's public sentinels, keeping the original error in the chain for
// diagnostics without making callers depend on internal error values.
func wrapStreamErr(err error) error {
	switch {
	case err == nil:
		return nil
	case errors.Is(err, container.ErrBadMagic),
		errors.Is(err, container.ErrVersion),
		errors.Is(err, container.ErrTruncated),
		errors.Is(err, container.ErrCorrupt),
		errors.Is(err, container.ErrHeader):
		return fmt.Errorf("%w: %w", ErrCorrupt, err)
	case errors.Is(err, pressio.ErrUnknownCompressor):
		return fmt.Errorf("%w: %w", ErrUnknownCodec, err)
	}
	return err
}
