package fraz

import (
	"errors"
	"fmt"

	"fraz/internal/archive"
	"fraz/internal/container"
	"fraz/internal/core"
	"fraz/internal/pressio"
)

// ErrInfeasible reports that no error bound in the admissible range reaches
// the target compression ratio within the tolerance. Compress fails with it
// (writing nothing), and TuneResult.Err returns it for infeasible tunes.
// Match with errors.Is; errors.As on *InfeasibleError recovers the closest
// configuration the search observed, so callers can decide whether to relax
// the tolerance, raise MaxError, or switch codecs.
var ErrInfeasible = core.ErrInfeasible

// InfeasibleError carries the closest observed configuration of an
// infeasible tune: the achieved ratio nearest the target, the bound that
// produced it, and its compressed size.
type InfeasibleError = core.InfeasibleError

// ErrUnknownCodec reports a codec name that is not in the registry — from
// New with a misspelled name, or from Decompress on a stream whose header
// names a codec this build does not carry. Codecs lists what is available.
var ErrUnknownCodec = errors.New("fraz: unknown codec")

// ErrCorrupt reports a stream that is not a decodable .fraz container or
// .frazd dataset archive: bad magic, a header field out of range, a
// truncated payload or directory, a CRC mismatch, or a format version newer
// than this build reads.
var ErrCorrupt = errors.New("fraz: invalid or corrupt .fraz stream")

// ErrFieldNotFound reports a Dataset lookup for a (field, step) pair the
// archive's directory does not hold. Dataset.Fields lists what is there.
var ErrFieldNotFound = errors.New("fraz: field not found in dataset")

// ErrDuplicateField reports an attempt to add a (field, step) pair the
// dataset already holds — entries are immutable once written, so a rewrite
// must go to a new archive.
var ErrDuplicateField = errors.New("fraz: duplicate field in dataset")

// wrapStreamErr maps internal container and registry failures onto the
// package's public sentinels, keeping the original error in the chain for
// diagnostics without making callers depend on internal error values.
func wrapStreamErr(err error) error {
	switch {
	case err == nil:
		return nil
	case errors.Is(err, container.ErrBadMagic),
		errors.Is(err, container.ErrVersion),
		errors.Is(err, container.ErrTruncated),
		errors.Is(err, container.ErrCorrupt),
		errors.Is(err, container.ErrHeader),
		errors.Is(err, archive.ErrBadMagic),
		errors.Is(err, archive.ErrVersion),
		errors.Is(err, archive.ErrTruncated),
		errors.Is(err, archive.ErrCorrupt):
		return fmt.Errorf("%w: %w", ErrCorrupt, err)
	case errors.Is(err, archive.ErrNotFound):
		return fmt.Errorf("%w: %w", ErrFieldNotFound, err)
	case errors.Is(err, archive.ErrDuplicate):
		return fmt.Errorf("%w: %w", ErrDuplicateField, err)
	case errors.Is(err, pressio.ErrUnknownCompressor):
		return fmt.Errorf("%w: %w", ErrUnknownCodec, err)
	}
	return err
}
