package fraz

import (
	"fmt"
	"math"

	"fraz/internal/core"
	"fraz/internal/grid"
	"fraz/internal/metrics"
)

// Objective selects the quantity Compress and Tune drive the codec's
// parameter toward. The paper's fixed compression ratio is one objective
// among four: FixedRatio targets storage (ρt within a fractional band),
// while FixedPSNR, FixedSSIM, and FixedMaxError target the reconstruction's
// quality — the "error bounds that correspond with the quality of a
// scientist's analysis result" of the paper's future-work list. Every
// objective runs through the same region-parallel search, time-step bound
// reuse, and evaluation cache; pass one to New via Target (or the TargetPSNR
// / TargetSSIM / TargetMaxError sugar).
//
// Quality objectives measure each candidate bound on the decompressed data
// (a compress+decompress round trip per evaluation, cached), so they tune
// slower than FixedRatio but promise what users actually care about. The
// achieved value is recorded in the .fraz container header, making archives
// self-describing about what was promised; `fraz -verify` recomputes it.
type Objective struct {
	obj core.Objective
	err error
}

// FixedRatio targets the compression ratio ρt (> 1): the paper's objective,
// and what the Ratio option constructs. The default acceptance band is
// ρt·(1±0.1); adjust it with Tolerance or WithTolerance (fractional).
func FixedRatio(target float64) Objective {
	if !(target > 1) || math.IsInf(target, 0) || math.IsNaN(target) {
		return Objective{err: fmt.Errorf("fraz: Ratio must be > 1, got %v", target)}
	}
	return Objective{obj: core.FixedRatio(target)}
}

// FixedPSNR targets the reconstruction's peak signal-to-noise ratio in
// decibels (> 0). The default acceptance band is target·(1±0.05) — ±3 dB at
// 60 dB; the tolerance is fractional.
func FixedPSNR(db float64) Objective {
	if !(db > 0) || math.IsInf(db, 0) || math.IsNaN(db) {
		return Objective{err: fmt.Errorf("fraz: PSNR target must be a positive number of decibels, got %v", db)}
	}
	return Objective{obj: core.FixedPSNR(db)}
}

// FixedSSIM targets the mean structural similarity of the field's central
// 2-D slice, in (0, 1]. The default acceptance band is target±0.02; the
// tolerance is absolute. Requires 2-D or 3-D data (SSIM is an image metric).
func FixedSSIM(target float64) Objective {
	if !(target > 0) || target > 1 || math.IsNaN(target) {
		return Objective{err: fmt.Errorf("fraz: SSIM target must be in (0, 1], got %v", target)}
	}
	return Objective{obj: core.FixedSSIM(target)}
}

// FixedMaxError targets the measured maximum absolute pointwise error of the
// reconstruction (> 0): the codec setting that spends the whole error budget
// u, rather than an error bound passed through verbatim (codecs routinely
// undershoot their bound). The default acceptance band is u±0.1·u; the
// tolerance is absolute.
func FixedMaxError(u float64) Objective {
	if !(u > 0) || math.IsInf(u, 0) || math.IsNaN(u) {
		return Objective{err: fmt.Errorf("fraz: max-error target must be > 0, got %v", u)}
	}
	return Objective{obj: core.FixedMaxError(u)}
}

// WithTolerance returns a copy of the objective with its acceptance
// half-width replaced: fractional for FixedRatio and FixedPSNR (band
// target·(1±tol), tol in (0,1)), absolute for FixedSSIM and FixedMaxError
// (band target±tol). Unlike the Tolerance option — which is capped to [0,1)
// for compatibility with its fractional origins — WithTolerance admits any
// positive width an absolute band needs (e.g. a max-error target of 100±5).
func (o Objective) WithTolerance(tol float64) Objective {
	if o.err != nil {
		return o
	}
	if !(tol > 0) || math.IsInf(tol, 0) {
		return Objective{err: fmt.Errorf("fraz: objective tolerance must be > 0, got %v", tol)}
	}
	o.obj.Tolerance = tol
	return o
}

// Name reports the objective's registered name: "ratio", "psnr", "ssim", or
// "max-error". It is what container headers record.
func (o Objective) Name() string { return o.obj.Name }

// Target reports the requested objective value.
func (o Objective) Target() float64 { return o.obj.Target }

// Band reports the absolute acceptance interval [lo, hi] a tuned result
// must land in, with the objective's default tolerance resolved — the same
// band a Client built from this objective enforces.
func (o Objective) Band() (lo, hi float64) {
	return o.obj.WithDefaults().Band()
}

// DirectlySatisfiable reports whether this objective, paired with the
// described codec, is satisfiable by capability alone — no search, zero
// tuning evaluations. True only for FixedRatio with a fixed-rate codec
// (CodecInfo.FixedRate): the codec's compressed size is a closed-form
// function of its bits-per-value parameter, so the target ratio is
// inverted arithmetically. A Client detecting this combination seals with
// CompressResult.Evaluations == 0 and Direct == true; quality objectives
// always run the search.
func (o Objective) DirectlySatisfiable(ci CodecInfo) bool {
	return o.err == nil && o.obj.DirectlySatisfiable() && ci.FixedRate
}

// Measure computes the objective's value for a reconstruction of original
// with the given shape; compressedBytes sizes the ratio computation (pass 0
// when unknown — quality objectives do not need it). It is how `fraz
// -verify` and callers with their own storage pipelines recompute an
// archive's recorded promise.
func (o Objective) Measure(original, reconstructed []float32, shape []int, compressedBytes int) (float64, error) {
	return MeasureT(o, original, reconstructed, shape, compressedBytes)
}

// Measure64 is Measure for double-precision fields.
func (o Objective) Measure64(original, reconstructed []float64, shape []int, compressedBytes int) (float64, error) {
	return MeasureT(o, original, reconstructed, shape, compressedBytes)
}

// MeasureT is the dtype-generic form of Objective.Measure (Go methods
// cannot take type parameters, so the generic entry point is a package
// function over the objective).
func MeasureT[T Element](o Objective, original, reconstructed []T, shape []int, compressedBytes int) (float64, error) {
	if o.err != nil {
		return 0, o.err
	}
	dims, err := grid.NewDims(shape...)
	if err != nil {
		return 0, fmt.Errorf("fraz: invalid shape %v: %w", shape, err)
	}
	rep, err := metrics.EvaluateGrid(original, reconstructed, dims, compressedBytes)
	if err != nil {
		return 0, fmt.Errorf("fraz: measuring %s: %w", o.obj.Name, err)
	}
	v := o.obj.Achieved(core.Evaluation{
		Ratio:          rep.CompressionRatio,
		CompressedSize: compressedBytes,
		Report:         &rep,
	})
	if math.IsNaN(v) {
		return 0, fmt.Errorf("fraz: objective %s is not measurable on shape %v", o.obj.Name, shape)
	}
	return v, nil
}

// ObjectiveByName reconstructs a built-in objective from its registered name
// and target — the inverse of the container header's objective record, used
// to re-verify archives:
//
//	obj, err := fraz.ObjectiveByName(res.Objective.Name, res.Objective.Target)
//	achieved, err := obj.Measure(original, res.Data, res.Shape, res.CompressedBytes)
func ObjectiveByName(name string, target float64) (Objective, error) {
	var o Objective
	switch name {
	case "ratio":
		o = FixedRatio(target)
	case "psnr":
		o = FixedPSNR(target)
	case "ssim":
		o = FixedSSIM(target)
	case "max-error":
		o = FixedMaxError(target)
	default:
		return Objective{}, fmt.Errorf("fraz: unknown objective %q (have ratio, psnr, ssim, max-error)", name)
	}
	return o, o.err
}
