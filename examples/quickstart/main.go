// The quickstart example shows the minimal FRaZ workflow through the public
// fraz package: take one field of scientific floating-point data, ask for a
// 10:1 compression ratio, let the tuner find the error bound that delivers
// it, and store the result as a self-describing .fraz container that
// decompresses with no side knowledge.
package main

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"log"
	"math"

	"fraz"
	"fraz/internal/dataset"
)

func main() {
	ctx := context.Background()

	// 1. Get some data: one time-step of the synthetic Hurricane temperature
	//    field (a stand-in for the SDRBench Hurricane-TCf field). Any flat
	//    row-major []float32 plus its shape works here.
	hurricane, err := dataset.New("Hurricane", dataset.ScaleSmall)
	if err != nil {
		log.Fatal(err)
	}
	data, shape, err := hurricane.Generate("TCf", 0)
	if err != nil {
		log.Fatal(err)
	}

	// 2. Build a client: codec by name, target ratio and tolerance as
	//    functional options. fraz.Codecs() lists the registered codecs.
	client, err := fraz.New("sz:abs", fraz.Ratio(10), fraz.Tolerance(0.1), fraz.Seed(1))
	if err != nil {
		log.Fatal(err)
	}

	// 3. Compress: the tuner searches the error-bound space for the target
	//    ratio, then streams a .fraz container to any io.Writer. If no bound
	//    reaches 10:1 ±10% the call fails with fraz.ErrInfeasible and
	//    nothing is written.
	var archive bytes.Buffer
	res, err := client.Compress(ctx, &archive, data, []int(shape))
	if errors.Is(err, fraz.ErrInfeasible) {
		var ie *fraz.InfeasibleError
		errors.As(err, &ie)
		log.Fatalf("10:1 not reachable on this data; closest observed ratio %.2f", ie.ClosestRatio)
	}
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("field:             Hurricane/TCf %v (%.2f MB)\n", shape, float64(4*len(data))/1e6)
	fmt.Printf("recommended bound: %g (%s)\n", res.ErrorBound, client.Codec().BoundName)
	fmt.Printf("achieved ratio:    %.2f (target 10 +/- 10%%)\n", res.Ratio)
	fmt.Printf("container:         %d bytes, %d blocks, tuned in %d compressor calls (%v)\n",
		res.BytesWritten, res.Blocks, res.Evaluations, res.Elapsed)

	// 4. Decompress: everything needed — codec, bound, shape — comes from
	//    the container header. No flags, no metadata sidecar.
	restored, restoredShape, err := fraz.Decompress(ctx, &archive)
	if err != nil {
		log.Fatal(err)
	}

	// 5. Check the fidelity: sz:abs is error-bounded, so every value is
	//    within the tuned bound of the original.
	maxErr := 0.0
	for i := range data {
		if d := math.Abs(float64(restored[i]) - float64(data[i])); d > maxErr {
			maxErr = d
		}
	}
	fmt.Printf("restored:          %d values, shape %v\n", len(restored), restoredShape)
	fmt.Printf("max error:         %g (guaranteed <= %g)\n", maxErr, res.ErrorBound)
}
