// The quickstart example shows the minimal FRaZ workflow: take one field of
// scientific floating-point data, ask for a 10:1 compression ratio, let the
// tuner find the error bound that delivers it, and store the result as a
// self-describing .fraz container that decompresses with no side knowledge.
package main

import (
	"context"
	"fmt"
	"log"

	"fraz/internal/container"
	"fraz/internal/core"
	"fraz/internal/dataset"
	"fraz/internal/pressio"
)

func main() {
	// 1. Get some data: one time-step of the synthetic Hurricane temperature
	//    field (a stand-in for the SDRBench Hurricane-TCf field).
	hurricane, err := dataset.New("Hurricane", dataset.ScaleSmall)
	if err != nil {
		log.Fatal(err)
	}
	data, shape, err := hurricane.Generate("TCf", 0)
	if err != nil {
		log.Fatal(err)
	}
	buf, err := pressio.NewBuffer(data, shape)
	if err != nil {
		log.Fatal(err)
	}

	// 2. Pick an error-bounded compressor through the generic interface.
	compressor, err := pressio.New("sz:abs")
	if err != nil {
		log.Fatal(err)
	}

	// 3. Ask FRaZ for a 10:1 ratio, accepting anything within 10%.
	tuner, err := core.NewTuner(compressor, core.Config{
		TargetRatio: 10,
		Tolerance:   0.1,
		Seed:        1,
	})
	if err != nil {
		log.Fatal(err)
	}
	result, err := tuner.TuneBuffer(context.Background(), buf)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("field:             Hurricane/TCf %s (%.2f MB)\n", shape, float64(buf.Bytes())/1e6)
	fmt.Printf("recommended bound: %g (%s)\n", result.ErrorBound, compressor.BoundName())
	fmt.Printf("achieved ratio:    %.2f (target 10 +/- 10%%)\n", result.AchievedRatio)
	fmt.Printf("feasible:          %v after %d compressor calls in %v\n",
		result.Feasible, result.Iterations, result.Elapsed)

	// 4. Use the bound: compress, decompress, and check the fidelity.
	full, err := pressio.Run(compressor, buf, result.ErrorBound)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("quality:           %s\n", full.Report)

	// 5. Archive it: seal the tuned compression into a .fraz container.
	//    The header carries the codec, bound, ratio, and shape, so the
	//    artifact round-trips from bytes alone — no flags, no metadata
	//    sidecar.
	sealed, err := pressio.Seal(compressor, buf, result.ErrorBound)
	if err != nil {
		log.Fatal(err)
	}
	encoded, err := sealed.Encode()
	if err != nil {
		log.Fatal(err)
	}
	decoded, err := container.Decode(encoded)
	if err != nil {
		log.Fatal(err)
	}
	restored, err := pressio.Open(decoded)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("container:         %d bytes (%s)\n", len(encoded), decoded.Header)
	fmt.Printf("restored:          %d values, shape %s\n", len(restored.Data), restored.Shape)
}
