// The instrument example reproduces the paper's third use case (§II-B): a
// light-source detector (LCLS-II-like) producing data faster than the
// storage system can absorb, so every acquisition must be compressed by at
// least 10:1 before it is written out. The stream is tuned online: the error
// bound found for one acquisition is reused for the next and retrained only
// when the data drifts enough to leave the acceptance band — the time-step
// reuse strategy of Algorithm 3.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"fraz/internal/core"
	"fraz/internal/dataset"
	"fraz/internal/pressio"
)

func main() {
	const (
		targetRatio  = 10.0
		tolerance    = 0.15
		acquisitions = 24
	)

	archiveDir, err := os.MkdirTemp("", "fraz-instrument-*")
	if err != nil {
		log.Fatal(err)
	}

	// The NYX temperature field evolves across time-steps; cycling through
	// them stands in for successive detector acquisitions.
	nyx, err := dataset.New("NYX", dataset.ScaleSmall)
	if err != nil {
		log.Fatal(err)
	}
	compressor, err := pressio.New("zfp:accuracy")
	if err != nil {
		log.Fatal(err)
	}
	tuner, err := core.NewTuner(compressor, core.Config{
		TargetRatio: targetRatio,
		Tolerance:   tolerance,
		Seed:        3,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("streaming %d acquisitions, target %.0f:1 (tolerance %.0f%%), compressor %s\n\n",
		acquisitions, targetRatio, tolerance*100, compressor.Name())
	fmt.Printf("%-5s %-12s %-10s %-9s %-10s %s\n", "acq", "ratio", "feasible", "reused", "calls", "tune time")

	var prediction float64
	var reused, retrained int
	var totalBytes, compressedBytes int
	start := time.Now()
	for acq := 0; acq < acquisitions; acq++ {
		data, shape, err := nyx.Generate("temperature", acq%nyx.TimeSteps)
		if err != nil {
			log.Fatal(err)
		}
		buf, err := pressio.NewBuffer(data, shape)
		if err != nil {
			log.Fatal(err)
		}
		res, err := tuner.TuneWithPrediction(context.Background(), buf, prediction)
		if err != nil {
			log.Fatal(err)
		}
		if res.UsedPrediction {
			reused++
		} else {
			retrained++
		}
		if res.Feasible {
			prediction = res.ErrorBound
		}
		// Archive the acquisition as a self-describing .fraz container: the
		// header records the codec, bound, ratio, and shape, so each stored
		// acquisition is independently decodable long after this run.
		sealed, err := pressio.Seal(compressor, buf, res.ErrorBound)
		if err != nil {
			log.Fatal(err)
		}
		encoded, err := sealed.Encode()
		if err != nil {
			log.Fatal(err)
		}
		path := filepath.Join(archiveDir, fmt.Sprintf("acq_%03d.fraz", acq))
		if err := os.WriteFile(path, encoded, 0o644); err != nil {
			log.Fatal(err)
		}
		totalBytes += buf.Bytes()
		compressedBytes += len(encoded)
		fmt.Printf("%-5d %-12.2f %-10v %-9v %-10d %v\n",
			acq, res.AchievedRatio, res.Feasible, res.UsedPrediction, res.Iterations, res.Elapsed.Round(time.Millisecond))
	}
	elapsed := time.Since(start)

	fmt.Printf("\nreused the previous bound on %d/%d acquisitions (%d retrains)\n", reused, acquisitions, retrained)
	fmt.Printf("aggregate reduction %.2f:1 including container headers; effective ingest throughput %.1f MB/s of raw data\n",
		float64(totalBytes)/float64(compressedBytes),
		float64(totalBytes)/1e6/elapsed.Seconds())
	fmt.Printf("archived %d .fraz containers under %s (decode any of them with: fraz -decompress <file>)\n",
		acquisitions, archiveDir)
}
