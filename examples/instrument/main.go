// The instrument example reproduces the paper's third use case (§II-B): a
// light-source detector (LCLS-II-like) producing data faster than the
// storage system can absorb, so every acquisition must be compressed by at
// least 10:1 before it is written out. The stream is tuned online: the
// fraz.Client remembers the error bound found for one acquisition and tries
// it first on the next, retraining only when the data drifts enough to
// leave the acceptance band — the time-step reuse strategy of Algorithm 3,
// with each acquisition streamed straight to its archive file.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"fraz"
	"fraz/internal/dataset"
)

func main() {
	const (
		targetRatio  = 10.0
		tolerance    = 0.15
		acquisitions = 24
	)
	ctx := context.Background()

	archiveDir, err := os.MkdirTemp("", "fraz-instrument-*")
	if err != nil {
		log.Fatal(err)
	}

	// The NYX temperature field evolves across time-steps; cycling through
	// them stands in for successive detector acquisitions.
	nyx, err := dataset.New("NYX", dataset.ScaleSmall)
	if err != nil {
		log.Fatal(err)
	}
	// One long-lived client for the whole stream: it carries the last
	// feasible bound from acquisition to acquisition as the next search's
	// starting prediction (disable with fraz.ReuseBounds(false) to see the
	// retrain cost on every step).
	client, err := fraz.New("zfp:accuracy", fraz.Ratio(targetRatio), fraz.Tolerance(tolerance), fraz.Seed(3))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("streaming %d acquisitions, target %.0f:1 (tolerance %.0f%%), compressor %s\n\n",
		acquisitions, targetRatio, tolerance*100, client.Codec().Name)
	fmt.Printf("%-5s %-12s %-9s %-10s %s\n", "acq", "ratio", "reused", "calls", "tune time")

	var reused, retrained, dropped int
	var totalBytes int
	var compressedBytes int64
	start := time.Now()
	for acq := 0; acq < acquisitions; acq++ {
		data, shape, err := nyx.Generate("temperature", acq%nyx.TimeSteps)
		if err != nil {
			log.Fatal(err)
		}
		// Stream each acquisition directly into its own self-describing
		// .fraz archive: the container is written as it is sealed, never
		// staged whole in memory.
		path := filepath.Join(archiveDir, fmt.Sprintf("acq_%03d.fraz", acq))
		f, err := os.Create(path)
		if err != nil {
			log.Fatal(err)
		}
		res, err := client.Compress(ctx, f, data, []int(shape))
		// A close-time flush failure means the archive on disk is not the
		// container Compress reported; treat it exactly like a compression
		// failure rather than counting a truncated file as archived.
		if cerr := f.Close(); cerr != nil && err == nil {
			err = cerr
		}
		if errors.Is(err, fraz.ErrInfeasible) {
			// This acquisition cannot hit the ratio contract: drop the empty
			// archive and keep streaming rather than stalling the detector.
			os.Remove(path)
			dropped++
			fmt.Printf("%-5d dropped (target infeasible: %v)\n", acq, err)
			continue
		}
		if err != nil {
			log.Fatal(err)
		}
		if res.UsedPrediction {
			reused++
		} else {
			retrained++
		}
		totalBytes += 4 * len(data)
		compressedBytes += res.BytesWritten
		fmt.Printf("%-5d %-12.2f %-9v %-10d %v\n",
			acq, res.Ratio, res.UsedPrediction, res.Evaluations, res.Elapsed.Round(time.Millisecond))
	}
	elapsed := time.Since(start)

	fmt.Printf("\nreused the previous bound on %d/%d acquisitions (%d retrains, %d dropped)\n",
		reused, acquisitions, retrained, dropped)
	fmt.Printf("aggregate reduction %.2f:1 including container headers; effective ingest throughput %.1f MB/s of raw data\n",
		float64(totalBytes)/float64(compressedBytes),
		float64(totalBytes)/1e6/elapsed.Seconds())
	fmt.Printf("archived %d .fraz containers under %s (decode any of them with: fraz -decompress <file>)\n",
		acquisitions-dropped, archiveDir)
}
