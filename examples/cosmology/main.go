// The cosmology example reproduces the paper's second use case (§II-B):
// choosing the best-fit compressor for a fixed compressed size. For an
// HACC-like particle field and a NYX-like grid field it drives every
// applicable compressor to the same target ratio with FRaZ, adds ZFP's
// native fixed-rate mode as the baseline, and reports which one preserves
// the data best at that size (the comparison behind the paper's Fig. 9 and
// Fig. 10).
package main

import (
	"context"
	"fmt"
	"log"

	"fraz/internal/core"
	"fraz/internal/dataset"
	"fraz/internal/pressio"
)

func main() {
	const (
		targetRatio = 16.0
		tolerance   = 0.1
	)

	cases := []struct {
		app, field string
	}{
		{"HACC", "x"},          // 1-D particle positions: MGARD drops out
		{"NYX", "temperature"}, // 3-D grid: every error-bounded back end applies
	}

	for _, cse := range cases {
		d, err := dataset.New(cse.app, dataset.ScaleSmall)
		if err != nil {
			log.Fatal(err)
		}
		data, shape, err := d.Generate(cse.field, 0)
		if err != nil {
			log.Fatal(err)
		}
		buf, err := pressio.NewBuffer(data, shape)
		if err != nil {
			log.Fatal(err)
		}

		// Pick the candidates from the codec registry: every lossy
		// error-bounded codec whose capabilities cover this data's rank.
		// Registering a new back end makes it show up here automatically —
		// no per-dataset compressor list to maintain.
		var candidates []string
		for _, cd := range pressio.Codecs() {
			if cd.Caps.ErrorBounded && !cd.Caps.Lossless && cd.Caps.SupportsRank(shape.NDims()) {
				candidates = append(candidates, cd.Name)
			}
		}

		fmt.Printf("%s/%s %s — target %.0f:1\n", cse.app, cse.field, shape, targetRatio)
		fmt.Printf("  %-22s %-10s %-10s %-12s %s\n", "compressor", "ratio", "feasible", "psnr (dB)", "max error")

		for _, name := range candidates {
			c, err := pressio.New(name)
			if err != nil {
				log.Fatal(err)
			}
			tuner, err := core.NewTuner(c, core.Config{TargetRatio: targetRatio, Tolerance: tolerance, Seed: 11})
			if err != nil {
				log.Fatal(err)
			}
			res, err := tuner.TuneBuffer(context.Background(), buf)
			if err != nil {
				log.Fatal(err)
			}
			full, err := pressio.Run(c, buf, res.ErrorBound)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %-22s %-10.2f %-10v %-12.2f %.4g\n",
				name+" (FRaZ)", full.Report.CompressionRatio, res.Feasible, full.Report.PSNR, full.Report.MaxError)
		}

		// ZFP fixed-rate baseline at the equivalent bit rate.
		rate := 32.0 / targetRatio
		fixed, err := pressio.New("zfp:rate")
		if err != nil {
			log.Fatal(err)
		}
		full, err := pressio.Run(fixed, buf, rate)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-22s %-10.2f %-10v %-12.2f %.4g\n\n",
			"zfp:rate (baseline)", full.Report.CompressionRatio, true, full.Report.PSNR, full.Report.MaxError)
	}
}
