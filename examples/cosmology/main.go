// The cosmology example reproduces the paper's second use case (§II-B):
// choosing the best-fit compressor for a fixed compressed size. For an
// HACC-like particle field and a NYX-like grid field it drives every
// applicable codec to the same target ratio, adds ZFP's native fixed-rate
// mode as the baseline (via fraz.FixedBound), and reports which one
// preserves the data best at that size (the comparison behind the paper's
// Fig. 9 and Fig. 10). Candidate selection runs on fraz.Codecs — codec
// discovery through public capability descriptors, so registering a new
// back end makes it show up here automatically.
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"math"

	"fraz"
	"fraz/internal/dataset"
)

func main() {
	const (
		targetRatio = 16.0
		tolerance   = 0.1
	)
	ctx := context.Background()

	cases := []struct {
		app, field string
	}{
		{"HACC", "x"},          // 1-D particle positions: MGARD drops out
		{"NYX", "temperature"}, // 3-D grid: every error-bounded back end applies
	}

	for _, cse := range cases {
		d, err := dataset.New(cse.app, dataset.ScaleSmall)
		if err != nil {
			log.Fatal(err)
		}
		data, shape, err := d.Generate(cse.field, 0)
		if err != nil {
			log.Fatal(err)
		}

		// Pick the candidates from the codec registry: every lossy
		// error-bounded codec whose capabilities cover this data's rank.
		var candidates []string
		for _, ci := range fraz.Codecs() {
			if ci.ErrorBounded && !ci.Lossless && ci.SupportsRank(len(shape)) {
				candidates = append(candidates, ci.Name)
			}
		}

		fmt.Printf("%s/%s %v — target %.0f:1\n", cse.app, cse.field, shape, targetRatio)
		fmt.Printf("  %-22s %-10s %-10s %-12s %s\n", "compressor", "ratio", "feasible", "psnr (dB)", "max error")

		for _, name := range candidates {
			client, err := fraz.New(name, fraz.Ratio(targetRatio), fraz.Tolerance(tolerance), fraz.Seed(11))
			if err != nil {
				log.Fatal(err)
			}
			// Tune reports an infeasible search as data (Feasible false with
			// the closest configuration) so the comparison table can still
			// show how close the codec got.
			tuned, err := client.Tune(ctx, data, []int(shape))
			if err != nil {
				log.Fatal(err)
			}
			ratio, psnr, maxErr := sealAndMeasure(ctx, name, tuned.ErrorBound, data, []int(shape))
			fmt.Printf("  %-22s %-10.2f %-10v %-12.2f %.4g\n",
				name+" (FRaZ)", ratio, tuned.Feasible, psnr, maxErr)
		}

		// ZFP fixed-rate baseline at the equivalent bit rate: no tuning, the
		// rate parameter is set directly with FixedBound.
		ratio, psnr, maxErr := sealAndMeasure(ctx, "zfp:rate", 32.0/targetRatio, data, []int(shape))
		fmt.Printf("  %-22s %-10.2f %-10v %-12.2f %.4g\n\n",
			"zfp:rate (baseline)", ratio, true, psnr, maxErr)
	}
}

// sealAndMeasure compresses at an explicit codec parameter, round-trips the
// container, and measures the reconstruction quality against the original.
// The PSNR/max-error math is spelled out here deliberately: an external
// consumer of the fraz package cannot reach internal/metrics, so this is
// exactly the verification code they would write.
func sealAndMeasure(ctx context.Context, codec string, bound float64, data []float32, shape []int) (ratio, psnr, maxErr float64) {
	client, err := fraz.New(codec, fraz.FixedBound(bound), fraz.Blocks(1))
	if err != nil {
		log.Fatal(err)
	}
	var archive bytes.Buffer
	res, err := client.Compress(ctx, &archive, data, shape)
	if err != nil {
		log.Fatal(err)
	}
	restored, _, err := fraz.Decompress(ctx, &archive)
	if err != nil {
		log.Fatal(err)
	}

	lo, hi := float64(data[0]), float64(data[0])
	var sumSq float64
	for i := range data {
		v := float64(data[i])
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
		d := float64(restored[i]) - v
		sumSq += d * d
		if a := math.Abs(d); a > maxErr {
			maxErr = a
		}
	}
	rmse := math.Sqrt(sumSq / float64(len(data)))
	psnr = math.Inf(1)
	if rmse > 0 {
		psnr = 20 * math.Log10((hi-lo)/rmse)
	}
	return res.Ratio, psnr, maxErr
}
