// The climate example reproduces the paper's first use case (§II-B): a
// climate project whose storage allocation forces a fixed overall reduction.
// Every 2-D CESM-ATM field must fit a 12:1 budget, but each field needs its
// own error bound to get there — exactly what the public package's
// TuneFields (the paper's field-parallel Algorithm 3) automates.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"fraz"
	"fraz/internal/dataset"
)

func main() {
	const (
		targetRatio = 12.0
		tolerance   = 0.1
		timeSteps   = 6 // a short window of the 62-step simulation
	)

	cesm, err := dataset.New("CESM", dataset.ScaleSmall)
	if err != nil {
		log.Fatal(err)
	}
	// One client tunes every field: its evaluation cache is shared across
	// all of them, so searches revisiting the same (data, bound) pairs skip
	// the compressor.
	client, err := fraz.New("sz:abs", fraz.Ratio(targetRatio), fraz.Tolerance(tolerance), fraz.Seed(7))
	if err != nil {
		log.Fatal(err)
	}

	// Build one lazily generated series per field and tune them in parallel.
	var series []fraz.Series
	for _, field := range cesm.FieldNames() {
		field := field
		series = append(series, fraz.Series{
			Name:  "CESM/" + field,
			Steps: timeSteps,
			At: func(t int) ([]float32, []int, error) {
				data, shape, err := cesm.Generate(field, t)
				return data, []int(shape), err
			},
		})
	}

	start := time.Now()
	results, err := client.TuneFields(context.Background(), series)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("CESM storage-budget run: %d fields x %d time-steps, target %.0f:1\n\n",
		len(series), timeSteps, targetRatio)
	fmt.Printf("%-14s %-10s %-10s %-9s %s\n", "field", "converged", "retrains", "calls", "mean ratio")
	var totalOriginal, totalCompressed float64
	var hits, calls int
	for _, r := range results {
		var sumRatio float64
		for _, s := range r.Steps {
			sumRatio += s.Ratio
			totalOriginal += float64(s.CompressedSize) * s.Ratio
			totalCompressed += float64(s.CompressedSize)
		}
		hits += r.CacheHits
		calls += r.Evaluations
		fmt.Printf("%-14s %3d/%-6d %-10d %-9d %.2f\n",
			r.Name, r.ConvergedSteps, len(r.Steps), r.Retrains, r.Evaluations,
			sumRatio/float64(len(r.Steps)))
	}
	fmt.Printf("\noverall reduction: %.2f:1 (storage budget %.0f:1), tuned in %v\n",
		totalOriginal/totalCompressed, targetRatio, time.Since(start).Round(time.Millisecond))
	// Computed inline rather than via internal/report: an external consumer
	// of the fraz package would have to do the same.
	savedPct := 0.0
	if calls > 0 {
		savedPct = 100 * float64(hits) / float64(calls)
	}
	fmt.Printf("evaluation cache: %d/%d evaluations served from cache (%.1f%% of compressor calls saved)\n",
		hits, calls, savedPct)
}
