// The climate example reproduces the paper's first use case (§II-B): a
// climate project whose storage allocation forces a fixed overall reduction.
// Every 2-D CESM-ATM field must fit a 12:1 budget, but each field needs its
// own error bound to get there — exactly what FRaZ's field-parallel
// orchestration (Algorithm 3) automates.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"fraz/internal/core"
	"fraz/internal/dataset"
	"fraz/internal/pressio"
	"fraz/internal/report"
)

func main() {
	const (
		targetRatio = 12.0
		tolerance   = 0.1
		timeSteps   = 6 // a short window of the 62-step simulation
	)

	cesm, err := dataset.New("CESM", dataset.ScaleSmall)
	if err != nil {
		log.Fatal(err)
	}
	compressor, err := pressio.New("sz:abs")
	if err != nil {
		log.Fatal(err)
	}
	// One evaluation cache shared by every field tuned below: fields whose
	// searches revisit the same (data, bound) pairs skip the compressor.
	cache := pressio.NewCache()
	tuner, err := core.NewTuner(compressor, core.Config{
		TargetRatio: targetRatio,
		Tolerance:   tolerance,
		Seed:        7,
		Cache:       cache,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Build one lazily generated series per field and tune them in parallel.
	var series []core.Series
	for _, field := range cesm.FieldNames() {
		field := field
		series = append(series, core.Series{
			Field: "CESM/" + field,
			Steps: timeSteps,
			At: func(t int) (pressio.Buffer, error) {
				data, shape, err := cesm.Generate(field, t)
				if err != nil {
					return pressio.Buffer{}, err
				}
				return pressio.NewBuffer(data, shape)
			},
		})
	}

	start := time.Now()
	results, err := tuner.TuneFields(context.Background(), series)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("CESM storage-budget run: %d fields x %d time-steps, target %.0f:1\n\n",
		len(series), timeSteps, targetRatio)
	fmt.Printf("%-14s %-10s %-10s %-9s %s\n", "field", "converged", "retrains", "calls", "mean ratio")
	var totalOriginal, totalCompressed float64
	for _, r := range results {
		var sumRatio float64
		for _, s := range r.Steps {
			sumRatio += s.Result.AchievedRatio
			totalOriginal += float64(s.Result.CompressedSize) * s.Result.AchievedRatio
			totalCompressed += float64(s.Result.CompressedSize)
		}
		fmt.Printf("%-14s %3d/%-6d %-10d %-9d %.2f\n",
			r.Field, r.ConvergedSteps, len(r.Steps), r.Retrains, r.TotalIterations,
			sumRatio/float64(len(r.Steps)))
	}
	fmt.Printf("\noverall reduction: %.2f:1 (storage budget %.0f:1), tuned in %v\n",
		totalOriginal/totalCompressed, targetRatio, time.Since(start).Round(time.Millisecond))
	hits, misses := cache.Stats()
	fmt.Printf("evaluation cache: %s\n", report.Savings(int(hits), int(misses)))
}
