// The quality example shows the Objective API: instead of fixing a storage
// budget (a compression ratio), fix the *quality* of the reconstruction —
// a PSNR floor for numerical analysis, an SSIM level for visual analysis —
// and let the tuner find the cheapest codec setting that delivers it. The
// achieved value is recorded in the .fraz container header, so the archive
// itself carries the promise and anyone holding the original can re-verify
// it later (as `fraz -decompress x.fraz -verify` does).
package main

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"log"

	"fraz"
	"fraz/internal/dataset"
)

func main() {
	ctx := context.Background()

	// One time-step of the synthetic NYX temperature field.
	nyx, err := dataset.New("NYX", dataset.ScaleSmall)
	if err != nil {
		log.Fatal(err)
	}
	data, shape, err := nyx.Generate("temperature", 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("field:            NYX/temperature %v (%.2f MB)\n", shape, float64(4*len(data))/1e6)

	// 1. A PSNR target: "give me at least ~60 dB, as cheaply as possible".
	//    TargetPSNR(60) accepts anything in 60·(1±5%) = [57, 63] dB and,
	//    among acceptable bounds, picks the one with the highest ratio.
	psnrClient, err := fraz.New("sz:abs", fraz.TargetPSNR(60), fraz.Seed(1))
	if err != nil {
		log.Fatal(err)
	}
	var archive bytes.Buffer
	res, err := psnrClient.Compress(ctx, &archive, data, []int(shape))
	if errors.Is(err, fraz.ErrInfeasible) {
		var ie *fraz.InfeasibleError
		errors.As(err, &ie)
		log.Fatalf("60 dB not reachable; closest %s %.4g", ie.Objective, ie.ClosestValue)
	}
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("psnr target:      60 dB -> achieved %.2f dB at ratio %.2f (bound %g, %d evaluations)\n",
		res.AchievedValue, res.Ratio, res.ErrorBound, res.Evaluations)

	// 2. The archive is self-describing about its promise: decode it and
	//    re-measure the objective against the original, exactly what
	//    `fraz -verify` does.
	dec, err := fraz.DecompressFull(ctx, &archive)
	if err != nil {
		log.Fatal(err)
	}
	rec := dec.Objective
	fmt.Printf("header records:   objective=%s target=%g band=±%g achieved=%.4g\n",
		rec.Name, rec.Target, rec.Tolerance, rec.Achieved)
	obj, err := fraz.ObjectiveByName(rec.Name, rec.Target)
	if err != nil {
		log.Fatal(err)
	}
	measured, err := obj.Measure(data, dec.Data, dec.Shape, dec.CompressedBytes)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("re-verified:      %.4g dB, in band: %v\n", measured, rec.InBand(measured))

	// 3. An SSIM target with a custom band: visual-quality criteria like
	//    Baker et al.'s climate threshold are stated in SSIM, an absolute
	//    [0,1] scale, so its tolerance is absolute too. (Had the codec not
	//    been able to degrade that far — transform codecs saturate — the
	//    call would fail with ErrInfeasible and the closest observed SSIM.)
	ssimOpt := fraz.Target(fraz.FixedSSIM(0.97).WithTolerance(0.02))
	var archive2 bytes.Buffer
	res2, err := fraz.Compress(ctx, &archive2, data, []int(shape),
		fraz.Codec("zfp:accuracy"), ssimOpt, fraz.Seed(1))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ssim target:      0.97 ± 0.02 -> achieved %.4f at ratio %.2f (%s)\n",
		res2.AchievedValue, res2.Ratio, res2.Codec)

	// 4. A measured max-error target: unlike MaxError (which merely caps the
	//    search), TargetMaxError drives the *measured* pointwise error to
	//    the budget, spending all the fidelity the analysis can tolerate.
	var archive3 bytes.Buffer
	res3, err := fraz.Compress(ctx, &archive3, data, []int(shape),
		fraz.TargetMaxError(0.5), fraz.Seed(1))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("max-error target: 0.5 -> measured %.4g at ratio %.2f\n",
		res3.AchievedValue, res3.Ratio)
}
