// Integration tests for the szx:abs speed-tier codec through the public
// fraz API: registry discovery, the max-error objective honoring its bound,
// and float64 round trips under both container versions.
package fraz_test

import (
	"bytes"
	"context"
	"math"
	"testing"

	"fraz"
)

func TestSZXRegistered(t *testing.T) {
	info, ok := fraz.LookupCodec("szx:abs")
	if !ok {
		t.Fatal("szx:abs not in codec registry")
	}
	if !info.ErrorBounded {
		t.Error("szx:abs must advertise an error bound")
	}
	if info.MinRank != 1 || info.MaxRank != 4 {
		t.Errorf("szx:abs rank range %d..%d, want 1..4", info.MinRank, info.MaxRank)
	}
}

func TestSZXFixedMaxError(t *testing.T) {
	data, shape := testField()
	// szx quantizes its error in kept-byte steps (~256x apart), so the
	// measured max error cannot land in the default ±10% band; widen the
	// acceptance band to [0.02·u, 1.98·u] and rely on the codec's bound
	// contract for the hard guarantee.
	const target = 5e-3
	obj := fraz.FixedMaxError(target).WithTolerance(0.98 * target)

	c, err := fraz.New("szx:abs", fraz.Target(obj))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	res, err := c.Compress(context.Background(), &buf, data, shape)
	if err != nil {
		t.Fatal(err)
	}
	if res.Codec != "szx:abs" {
		t.Errorf("sealed with %q, want szx:abs", res.Codec)
	}
	dec, decShape, err := c.Decompress(context.Background(), &buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(decShape) != len(shape) {
		t.Fatalf("shape %v, want %v", decShape, shape)
	}
	got := maxAbsDiff(data, dec)
	// The hard guarantee: the measured pointwise error honors the bound the
	// field was sealed at.
	if got > res.ErrorBound {
		t.Errorf("max abs error %g exceeds sealed bound %g", got, res.ErrorBound)
	}
	// The objective's promise: the achieved error lies inside the band.
	if _, hi := obj.Band(); got > hi {
		t.Errorf("max abs error %g exceeds band ceiling %g", got, hi)
	}
}

func TestSZXFloat64BothContainerVersions(t *testing.T) {
	shape := []int{8, 10, 12}
	data := make([]float64, 8*10*12)
	for i := range data {
		data[i] = 3e4*math.Sin(float64(i)/77) + float64(i%13)
	}
	const bound = 1e-2

	for _, tc := range []struct {
		name    string
		blocks  int
		version int
	}{
		{"v1 monolithic", 1, 1},
		{"v2 blocked", 4, 2},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var buf bytes.Buffer
			_, err := fraz.Compress(context.Background(), &buf, data, shape,
				fraz.Codec("szx:abs"), fraz.FixedBound(bound), fraz.Blocks(tc.blocks))
			if err != nil {
				t.Fatal(err)
			}
			res, err := fraz.DecompressFull(context.Background(), &buf)
			if err != nil {
				t.Fatal(err)
			}
			if res.Version != tc.version {
				t.Errorf("container version %d, want %d", res.Version, tc.version)
			}
			if res.Data64 == nil {
				t.Fatalf("archive decoded as %s, want float64", res.DType)
			}
			worst := 0.0
			for i := range data {
				if d := math.Abs(data[i] - res.Data64[i]); d > worst {
					worst = d
				}
			}
			if worst > bound {
				t.Errorf("max abs error %g exceeds bound %g", worst, bound)
			}
		})
	}
}

func TestSZXRank4(t *testing.T) {
	shape := []int{3, 4, 5, 6}
	data := make([]float32, 3*4*5*6)
	for i := range data {
		data[i] = float32(math.Cos(float64(i) / 9))
	}
	const bound = 1e-3
	var buf bytes.Buffer
	_, err := fraz.Compress(context.Background(), &buf, data, shape,
		fraz.Codec("szx:abs"), fraz.FixedBound(bound), fraz.Blocks(1))
	if err != nil {
		t.Fatal(err)
	}
	dec, decShape, err := fraz.Decompress(context.Background(), &buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(decShape) != 4 {
		t.Fatalf("shape %v, want rank 4", decShape)
	}
	if got := maxAbsDiff(data, dec); got > bound {
		t.Errorf("max abs error %g exceeds bound %g", got, bound)
	}
}
