package fraz_test

import (
	"bytes"
	"context"
	"errors"
	"math"
	"strings"
	"testing"

	"fraz"
)

// testField64 is testField computed in double precision: same smooth 3-D
// structure, full float64 resolution.
func testField64() ([]float64, []int) {
	shape := []int{16, 12, 10}
	data := make([]float64, shape[0]*shape[1]*shape[2])
	i := 0
	for z := 0; z < shape[0]; z++ {
		for y := 0; y < shape[1]; y++ {
			for x := 0; x < shape[2]; x++ {
				data[i] = 20*math.Sin(float64(z)/4)*math.Cos(float64(y)/5) + float64(x)/10
				i++
			}
		}
	}
	return data, shape
}

func maxAbsDiff64(a, b []float64) float64 {
	m := 0.0
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

// TestFloat64RoundTripProperty is the float64 mirror of the cross-codec
// float32 property test: for every registered codec that accepts the shape,
// a feasible fixed-ratio tune of a float64 field must (a) land its achieved
// ratio inside the objective band, (b) round-trip through the container at
// dtype float64, and (c) — for error-bounded codecs — respect the tuned
// absolute error bound pointwise.
func TestFloat64RoundTripProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("tunes every codec at float64")
	}
	data, shape := testField64()
	const target, tol = 10.0, 0.25
	feasible := 0
	for _, ci := range fraz.Codecs() {
		if !ci.SupportsRank(len(shape)) {
			continue
		}
		t.Run(ci.Name, func(t *testing.T) {
			c, err := fraz.New(ci.Name, fraz.Ratio(target), fraz.Tolerance(tol),
				fraz.Regions(4), fraz.Seed(3), fraz.Blocks(1))
			if err != nil {
				t.Fatal(err)
			}
			var stream bytes.Buffer
			res, err := c.Compress64(context.Background(), &stream, data, shape)
			if errors.Is(err, fraz.ErrInfeasible) {
				t.Skipf("%s cannot reach ratio %g on this field", ci.Name, target)
			}
			if err != nil {
				t.Skipf("%s cannot tune this field: %v", ci.Name, err)
			}
			if res.Ratio < target*(1-tol) || res.Ratio > target*(1+tol) {
				t.Errorf("achieved ratio %v outside band %g ± %g%%", res.Ratio, target, 100*tol)
			}
			full, err := c.DecompressFull(context.Background(), &stream)
			if err != nil {
				t.Fatal(err)
			}
			if full.DType != "float64" || full.Data64 == nil || full.Data != nil {
				t.Fatalf("round trip lost the dtype: DType=%q Data=%v Data64 set=%v", full.DType, full.Data != nil, full.Data64 != nil)
			}
			if len(full.Data64) != len(data) {
				t.Fatalf("reconstructed %d values, want %d", len(full.Data64), len(data))
			}
			if ci.ErrorBounded && !ci.Lossless {
				// The tuned parameter is an absolute pointwise bound except
				// for sz:rel (a fraction of the value range) and mgard:l2 (an
				// MSE budget, not pointwise).
				bound := res.ErrorBound
				switch {
				case strings.Contains(ci.BoundName, "relative"):
					min, max := data[0], data[0]
					for _, v := range data {
						min, max = math.Min(min, v), math.Max(max, v)
					}
					bound *= max - min
				case strings.Contains(ci.BoundName, "mean-squared"):
					bound = math.Inf(1)
				}
				if diff := maxAbsDiff64(data, full.Data64); diff > bound {
					t.Errorf("pointwise error %g exceeds tuned bound %g", diff, bound)
				}
			}
			feasible++
		})
	}
	if feasible < 3 {
		t.Errorf("only %d codecs tuned the float64 field; expected at least 3", feasible)
	}
}

// TestFloat64QualityObjective pins the second acceptance path: a float64
// field tuned to a fixed-PSNR objective seals, round-trips blocked through
// the container, and the recorded promise re-measures inside the band with
// Measure64.
func TestFloat64QualityObjective(t *testing.T) {
	if testing.Short() {
		t.Skip("quality tuning round-trips repeatedly")
	}
	data, shape := testField64()
	c, err := fraz.New("sz:abs", fraz.TargetPSNR(70), fraz.Regions(4), fraz.Seed(5))
	if err != nil {
		t.Fatal(err)
	}
	var stream bytes.Buffer
	res, err := c.Compress64(context.Background(), &stream, data, shape)
	if err != nil {
		t.Fatal(err)
	}
	if res.Objective != "psnr" {
		t.Fatalf("objective = %q", res.Objective)
	}
	full, err := fraz.DecompressFull(context.Background(), &stream)
	if err != nil {
		t.Fatal(err)
	}
	if full.Objective == nil {
		t.Fatal("archive carries no objective record")
	}
	obj, err := fraz.ObjectiveByName(full.Objective.Name, full.Objective.Target)
	if err != nil {
		t.Fatal(err)
	}
	measured, err := obj.Measure64(data, full.Data64, full.Shape, full.CompressedBytes)
	if err != nil {
		t.Fatal(err)
	}
	if !full.Objective.InBand(measured) {
		t.Errorf("re-measured PSNR %v outside the recorded band %g ± %g",
			measured, full.Objective.Target, full.Objective.Tolerance)
	}
}

// TestFloat64BlockedRoundTrip drives the generic seal path through a v2
// (blocked) container: four independently compressed float64 blocks decode
// in parallel back to within the tuned bound.
func TestFloat64BlockedRoundTrip(t *testing.T) {
	data, shape := testField64()
	c, err := fraz.New("sz:abs", fraz.Ratio(10), fraz.Tolerance(0.25),
		fraz.Regions(4), fraz.Seed(3), fraz.Blocks(4))
	if err != nil {
		t.Fatal(err)
	}
	var stream bytes.Buffer
	res, err := c.Compress64(context.Background(), &stream, data, shape)
	if err != nil {
		t.Fatal(err)
	}
	if res.Blocks != 4 {
		t.Fatalf("Blocks(4) wrote %d blocks", res.Blocks)
	}
	got, gotShape, err := c.Decompress64(context.Background(), &stream)
	if err != nil {
		t.Fatal(err)
	}
	if len(gotShape) != len(shape) {
		t.Fatalf("shape rank %d, want %d", len(gotShape), len(shape))
	}
	if diff := maxAbsDiff64(data, got); diff > res.ErrorBound {
		t.Errorf("pointwise error %g exceeds tuned bound %g", diff, res.ErrorBound)
	}
}

// TestPrecisionWidthMismatch pins the typed-width contract: a float32
// archive refuses the float64 accessors and vice versa, with errors that
// name the right alternative.
func TestPrecisionWidthMismatch(t *testing.T) {
	data64, shape := testField64()
	var s64 bytes.Buffer
	if _, err := fraz.Compress(context.Background(), &s64, data64, shape,
		fraz.Ratio(10), fraz.Tolerance(0.3), fraz.Regions(4), fraz.Seed(3)); err != nil {
		t.Fatal(err)
	}
	archive := s64.Bytes()

	if _, _, err := fraz.Decompress(context.Background(), bytes.NewReader(archive)); err == nil ||
		!strings.Contains(err.Error(), "float64") {
		t.Errorf("Decompress on a float64 archive: err = %v, want a float64-width error", err)
	}
	if _, _, err := fraz.DecompressAs[float32](context.Background(), bytes.NewReader(archive)); err == nil {
		t.Errorf("DecompressAs[float32] on a float64 archive should fail")
	}
	got, _, err := fraz.DecompressAs[float64](context.Background(), bytes.NewReader(archive))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(data64) {
		t.Fatalf("reconstructed %d values, want %d", len(got), len(data64))
	}

	// And the other direction: a float32 archive refuses Decompress64.
	data32 := make([]float32, len(data64))
	for i, v := range data64 {
		data32[i] = float32(v)
	}
	var s32 bytes.Buffer
	if _, err := fraz.Compress(context.Background(), &s32, data32, shape,
		fraz.Ratio(10), fraz.Tolerance(0.3), fraz.Regions(4), fraz.Seed(3)); err != nil {
		t.Fatal(err)
	}
	c, err := fraz.New("sz:abs")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Decompress64(context.Background(), bytes.NewReader(s32.Bytes())); err == nil ||
		!strings.Contains(err.Error(), "float32") {
		t.Errorf("Decompress64 on a float32 archive: err = %v, want a float32-width error", err)
	}
}
