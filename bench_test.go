// Benchmarks regenerating the paper's evaluation: one benchmark per table or
// figure (driving the same code paths as cmd/frazbench), plus ablation
// benchmarks for the design choices discussed in DESIGN.md (region
// parallelism, early-termination cutoff, time-step bound reuse, and the
// SZ pipeline stages).
//
// Run with:
//
//	go test -bench=. -benchmem
//
// This file is an external test package (fraz_test) so that it can import
// internal/experiments, which itself imports the public fraz package for
// the portfolio experiment.
package fraz_test

import (
	"context"
	"math"
	"sync"
	"testing"

	"fraz/internal/core"
	"fraz/internal/dataset"
	"fraz/internal/experiments"
	"fraz/internal/grid"
	"fraz/internal/pressio"
	"fraz/internal/sz"
)

func benchConfig() experiments.Config {
	cfg := experiments.DefaultConfig()
	cfg.MaxTimeSteps = 6
	return cfg
}

func runExperiment(b *testing.B, name string) {
	b.Helper()
	cfg := benchConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tables, err := experiments.Run(name, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(tables) == 0 || len(tables[0].Rows) == 0 {
			b.Fatalf("experiment %s produced no data", name)
		}
	}
}

// BenchmarkFigure1 regenerates Fig. 1: ZFP fixed-accuracy vs fixed-rate rate
// distortion and quality at a common ratio.
func BenchmarkFigure1(b *testing.B) { runExperiment(b, "fig1") }

// BenchmarkFigure3 regenerates Fig. 3: SZ's non-monotonic ratio-vs-bound
// curve on the hurricane log-cloud field.
func BenchmarkFigure3(b *testing.B) { runExperiment(b, "fig3") }

// BenchmarkFigure4 regenerates Fig. 4: the ratio curve and the clamped
// quadratic loss FRaZ minimises.
func BenchmarkFigure4(b *testing.B) { runExperiment(b, "fig4") }

// BenchmarkFigure6 regenerates Fig. 6: per-time-step convergence for a
// feasible and an infeasible target ratio.
func BenchmarkFigure6(b *testing.B) { runExperiment(b, "fig6") }

// BenchmarkFigure7 regenerates Fig. 7: runtime sensitivity to the target
// compression ratio.
func BenchmarkFigure7(b *testing.B) { runExperiment(b, "fig7") }

// BenchmarkFigure8 regenerates Fig. 8: strong scaling of the tuning job with
// the number of workers, for SZ and ZFP.
func BenchmarkFigure8(b *testing.B) { runExperiment(b, "fig8") }

// BenchmarkFigure9 regenerates Fig. 9: rate-distortion curves for all five
// applications and four compressor configurations.
func BenchmarkFigure9(b *testing.B) { runExperiment(b, "fig9") }

// BenchmarkFigure10 regenerates Fig. 10: quality metrics at a common
// compression ratio on the NYX temperature field.
func BenchmarkFigure10(b *testing.B) { runExperiment(b, "fig10") }

// BenchmarkTableIII regenerates Table III: the dataset inventory.
func BenchmarkTableIII(b *testing.B) { runExperiment(b, "table3") }

// BenchmarkIterationComparison regenerates the §V-B1 iteration-count
// comparison between FRaZ's optimizer and binary search.
func BenchmarkIterationComparison(b *testing.B) { runExperiment(b, "iters") }

// --- ablation benchmarks ------------------------------------------------------

func hurricaneBuffer(b *testing.B) pressio.Buffer {
	b.Helper()
	d, err := dataset.New("Hurricane", dataset.ScaleTiny)
	if err != nil {
		b.Fatal(err)
	}
	data, shape, err := d.Generate("CLOUDf", 0)
	if err != nil {
		b.Fatal(err)
	}
	buf, err := pressio.NewBuffer(data, shape)
	if err != nil {
		b.Fatal(err)
	}
	return buf
}

func tuneWith(b *testing.B, cfg core.Config) core.Result {
	b.Helper()
	c, err := pressio.New("sz:abs")
	if err != nil {
		b.Fatal(err)
	}
	tu, err := core.NewTuner(c, cfg)
	if err != nil {
		b.Fatal(err)
	}
	res, err := tu.TuneBuffer(context.Background(), hurricaneBuffer(b))
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// BenchmarkAblationSingleRegion measures the search with a single error-bound
// region (no region parallelism), the configuration the paper's Fig. 5/§V-C
// design improves upon.
func BenchmarkAblationSingleRegion(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tuneWith(b, core.Config{TargetRatio: 8, Tolerance: 0.1, Regions: 1, Seed: 1, MaxIterationsPerRegion: 48})
	}
}

// BenchmarkAblationTwelveRegions measures the paper's default of 12
// overlapping regions searched in parallel.
func BenchmarkAblationTwelveRegions(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tuneWith(b, core.Config{TargetRatio: 8, Tolerance: 0.1, Regions: 12, Seed: 1, MaxIterationsPerRegion: 24})
	}
}

// BenchmarkAblationNoCutoff disables the early-termination cutoff by
// requiring an (almost) exact ratio match, quantifying what the §V-B3 cutoff
// modification saves.
func BenchmarkAblationNoCutoff(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tuneWith(b, core.Config{TargetRatio: 8, Tolerance: 0.001, Regions: 6, Seed: 1, MaxIterationsPerRegion: 24})
	}
}

// BenchmarkAblationWithCutoff is the counterpart of BenchmarkAblationNoCutoff
// with the paper's default 10% acceptance band.
func BenchmarkAblationWithCutoff(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tuneWith(b, core.Config{TargetRatio: 8, Tolerance: 0.1, Regions: 6, Seed: 1, MaxIterationsPerRegion: 24})
	}
}

// BenchmarkAblationEvaluationCache measures a hard (barely reachable) target
// where the overlapping region searches burn their full iteration budget,
// and reports how many of those compressor evaluations the shared
// evaluation cache served without recompressing.
func BenchmarkAblationEvaluationCache(b *testing.B) {
	b.ReportAllocs()
	var hits, misses int
	for i := 0; i < b.N; i++ {
		res := tuneWith(b, core.Config{TargetRatio: 60, Tolerance: 0.1, Regions: 6, Seed: 1, MaxIterationsPerRegion: 24})
		hits += res.CacheHits
		misses += res.CacheMisses
	}
	b.ReportMetric(float64(hits)/float64(b.N), "cache-hits/op")
	b.ReportMetric(float64(misses)/float64(b.N), "compressions/op")
}

func hurricaneSeries(b *testing.B, steps int) core.Series {
	b.Helper()
	d, err := dataset.New("Hurricane", dataset.ScaleTiny)
	if err != nil {
		b.Fatal(err)
	}
	return core.Series{
		Field: "Hurricane/CLOUDf",
		Steps: steps,
		At: func(t int) (pressio.Buffer, error) {
			data, shape, err := d.Generate("CLOUDf", t)
			if err != nil {
				return pressio.Buffer{}, err
			}
			return pressio.NewBuffer(data, shape)
		},
	}
}

// BenchmarkAblationSeriesWithReuse tunes a time series with the previous
// step's bound reused as the prediction (Algorithm 3).
func BenchmarkAblationSeriesWithReuse(b *testing.B) {
	c, err := pressio.New("sz:abs")
	if err != nil {
		b.Fatal(err)
	}
	tu, err := core.NewTuner(c, core.Config{TargetRatio: 8, Tolerance: 0.1, Regions: 6, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	s := hurricaneSeries(b, 6)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tu.TuneSeries(context.Background(), s); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationSeriesWithoutReuse retrains from scratch at every
// time-step, quantifying the benefit of bound reuse.
func BenchmarkAblationSeriesWithoutReuse(b *testing.B) {
	c, err := pressio.New("sz:abs")
	if err != nil {
		b.Fatal(err)
	}
	tu, err := core.NewTuner(c, core.Config{TargetRatio: 8, Tolerance: 0.1, Regions: 6, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	s := hurricaneSeries(b, 6)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for t := 0; t < s.Steps; t++ {
			buf, err := s.At(t)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := tu.TuneBuffer(context.Background(), buf); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// --- SZ pipeline ablations ----------------------------------------------------

func szAblationData(b *testing.B) ([]float32, grid.Dims, float64) {
	b.Helper()
	d, err := dataset.New("Hurricane", dataset.ScaleTiny)
	if err != nil {
		b.Fatal(err)
	}
	data, shape, err := d.Generate("TCf", 0)
	if err != nil {
		b.Fatal(err)
	}
	// A 10^-3 relative bound is the paper's typical operating point.
	return data, shape, grid.ValueRange(data) * 1e-3
}

func benchSZ(b *testing.B, build func(bound float64) sz.Options) {
	data, shape, bound := szAblationData(b)
	opts := build(bound)
	b.SetBytes(int64(len(data) * 4))
	b.ReportAllocs()
	b.ResetTimer()
	var size int
	for i := 0; i < b.N; i++ {
		comp, err := sz.Compress(data, shape, opts)
		if err != nil {
			b.Fatal(err)
		}
		size = len(comp)
	}
	b.ReportMetric(float64(len(data)*4)/float64(size), "ratio")
}

// BenchmarkSZFullPipeline measures the complete SZ pipeline (hybrid
// predictor, Huffman, dictionary stage).
func BenchmarkSZFullPipeline(b *testing.B) {
	benchSZ(b, func(bound float64) sz.Options { return sz.Options{ErrorBound: bound} })
}

// BenchmarkSZNoRegression forces the Lorenzo predictor everywhere.
func BenchmarkSZNoRegression(b *testing.B) {
	benchSZ(b, func(bound float64) sz.Options { return sz.Options{ErrorBound: bound, DisableRegression: true} })
}

// BenchmarkSZNoDictionary skips the DEFLATE dictionary stage (stage 4).
func BenchmarkSZNoDictionary(b *testing.B) {
	benchSZ(b, func(bound float64) sz.Options { return sz.Options{ErrorBound: bound, DisableDictionary: true} })
}

// --- blocked seal/open benchmarks ---------------------------------------------

// blockedBenchBuffer builds the ≥64 MB synthetic field (256³ float32 =
// 67 MB) the blocked-pipeline benchmarks compress, once per process.
var blockedBenchBuffer pressio.Buffer
var blockedBenchOnce sync.Once

func benchField64MB(b *testing.B) (pressio.Buffer, float64) {
	b.Helper()
	blockedBenchOnce.Do(func() {
		shape := grid.MustDims(256, 256, 256)
		data := make([]float32, shape.Len())
		i := 0
		for z := 0; z < shape[0]; z++ {
			for y := 0; y < shape[1]; y++ {
				zy := 20 * math.Sin(float64(z)/17) * math.Cos(float64(y)/23)
				for x := 0; x < shape[2]; x++ {
					data[i] = float32(zy + 5*math.Sin(float64(x)/11) + float64((i*2654435761)%97)/970)
					i++
				}
			}
		}
		buf, err := pressio.NewBuffer(data, shape)
		if err != nil {
			b.Fatal(err)
		}
		blockedBenchBuffer = buf
	})
	return blockedBenchBuffer, blockedBenchBuffer.ValueRange() * 1e-3
}

// BenchmarkSealMonolithic64MB is the single-invocation baseline: one
// compressor call sealing the whole 67 MB field into a v1 container.
func BenchmarkSealMonolithic64MB(b *testing.B) {
	buf, bound := benchField64MB(b)
	c, err := pressio.New("sz:abs")
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(buf.Bytes()))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pressio.Seal(c, buf, bound); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSealBlocked8Workers seals the same field as 16 slowest-axis
// blocks compressed by 8 concurrent workers into a v2 container. On a
// multi-core host this is where the ≥2x seal-throughput win over
// BenchmarkSealMonolithic64MB shows up; the bytes/s columns of the two
// benchmarks are directly comparable.
func BenchmarkSealBlocked8Workers(b *testing.B) {
	buf, bound := benchField64MB(b)
	c, err := pressio.New("sz:abs")
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(buf.Bytes()))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pressio.SealBlocked(context.Background(), c, buf, bound, 16, 8); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOpenBlocked8Workers measures block-parallel decompression of the
// v2 container produced by the blocked seal.
func BenchmarkOpenBlocked8Workers(b *testing.B) {
	buf, bound := benchField64MB(b)
	c, err := pressio.New("sz:abs")
	if err != nil {
		b.Fatal(err)
	}
	cn, err := pressio.SealBlocked(context.Background(), c, buf, bound, 16, 8)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(buf.Bytes()))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pressio.OpenBlocked(context.Background(), cn, 8); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBlockedThroughputExperiment regenerates the frazbench "blocks"
// table (quick scale), keeping the experiment itself under benchmark watch.
func BenchmarkBlockedThroughputExperiment(b *testing.B) { runExperiment(b, "blocks") }

// BenchmarkRegionAblation regenerates the region-count/overlap ablation
// backing the paper's Fig. 5 design discussion.
func BenchmarkRegionAblation(b *testing.B) { runExperiment(b, "regions") }

// BenchmarkLosslessMotivation regenerates the lossless-versus-lossy
// motivation comparison from the paper's introduction.
func BenchmarkLosslessMotivation(b *testing.B) { runExperiment(b, "lossless") }

// BenchmarkTuneFixedPSNR measures the unified quality path: tuning the
// error bound to hit a PSNR target through the same region-parallel search
// as the fixed-ratio objective.
func BenchmarkTuneFixedPSNR(b *testing.B) {
	c, err := pressio.New("sz:abs")
	if err != nil {
		b.Fatal(err)
	}
	tu, err := core.NewTuner(c, core.Config{
		Objective: core.FixedPSNR(60),
		Regions:   6, MaxIterationsPerRegion: 16, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	buf := hurricaneBuffer(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tu.TuneBuffer(context.Background(), buf); err != nil {
			b.Fatal(err)
		}
	}
}
