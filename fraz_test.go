// These tests exercise the package exactly the way an external consumer
// would: through the public fraz API alone, with no reach into internal/
// packages. They double as the compatibility suite for the documented
// surface — round trips for both container versions, the typed error
// contract, and codec discovery.
package fraz_test

import (
	"bytes"
	"context"
	"errors"
	"math"
	"strings"
	"testing"

	"fraz"
)

// testField synthesises a smooth 3-D field, the kind of spatially coherent
// data the compressors are built for.
func testField() ([]float32, []int) {
	shape := []int{16, 12, 10}
	data := make([]float32, shape[0]*shape[1]*shape[2])
	i := 0
	for z := 0; z < shape[0]; z++ {
		for y := 0; y < shape[1]; y++ {
			for x := 0; x < shape[2]; x++ {
				data[i] = float32(20*math.Sin(float64(z)/4)*math.Cos(float64(y)/5) + float64(x)/10)
				i++
			}
		}
	}
	return data, shape
}

func maxAbsDiff(a, b []float32) float64 {
	m := 0.0
	for i := range a {
		if d := math.Abs(float64(a[i]) - float64(b[i])); d > m {
			m = d
		}
	}
	return m
}

func TestRoundTripMonolithic(t *testing.T) {
	data, shape := testField()
	c, err := fraz.New("sz:abs", fraz.Ratio(10), fraz.Tolerance(0.25), fraz.Regions(4), fraz.Seed(3), fraz.Blocks(1))
	if err != nil {
		t.Fatal(err)
	}
	var stream bytes.Buffer
	res, err := c.Compress(context.Background(), &stream, data, shape)
	if err != nil {
		t.Fatal(err)
	}
	if res.Blocks != 1 {
		t.Errorf("Blocks(1) wrote %d blocks", res.Blocks)
	}
	if res.BytesWritten != int64(stream.Len()) {
		t.Errorf("BytesWritten = %d, stream holds %d", res.BytesWritten, stream.Len())
	}
	if res.Ratio <= 1 || res.ErrorBound <= 0 || res.Evaluations == 0 {
		t.Errorf("implausible result: %+v", res)
	}

	full, err := c.DecompressFull(context.Background(), &stream)
	if err != nil {
		t.Fatal(err)
	}
	if full.Version != 1 || full.Blocks != 1 || full.Codec != "sz:abs" {
		t.Errorf("container metadata: %+v", full)
	}
	if len(full.Shape) != len(shape) {
		t.Fatalf("shape rank %d, want %d", len(full.Shape), len(shape))
	}
	for i := range shape {
		if full.Shape[i] != shape[i] {
			t.Fatalf("shape = %v, want %v", full.Shape, shape)
		}
	}
	if diff := maxAbsDiff(data, full.Data); diff > res.ErrorBound {
		t.Errorf("pointwise error %g exceeds tuned bound %g", diff, res.ErrorBound)
	}
}

func TestRoundTripBlocked(t *testing.T) {
	data, shape := testField()
	c, err := fraz.New("sz:abs", fraz.Ratio(10), fraz.Tolerance(0.25), fraz.Regions(4), fraz.Seed(3), fraz.Blocks(4))
	if err != nil {
		t.Fatal(err)
	}
	var stream bytes.Buffer
	res, err := c.Compress(context.Background(), &stream, data, shape)
	if err != nil {
		t.Fatal(err)
	}
	if res.Blocks != 4 {
		t.Fatalf("Blocks(4) wrote %d blocks", res.Blocks)
	}
	full, err := c.DecompressFull(context.Background(), &stream)
	if err != nil {
		t.Fatal(err)
	}
	if full.Version != 2 || full.Blocks != 4 {
		t.Errorf("blocked container metadata: version %d, %d blocks", full.Version, full.Blocks)
	}
	if diff := maxAbsDiff(data, full.Data); diff > res.ErrorBound {
		t.Errorf("pointwise error %g exceeds tuned bound %g", diff, res.ErrorBound)
	}
}

func TestOneShotHelpers(t *testing.T) {
	data, shape := testField()
	var stream bytes.Buffer
	res, err := fraz.Compress(context.Background(), &stream, data, shape,
		fraz.Codec("zfp:accuracy"), fraz.Ratio(8), fraz.Tolerance(0.25), fraz.Regions(4), fraz.Seed(2))
	if err != nil {
		t.Fatal(err)
	}
	if res.Codec != "zfp:accuracy" {
		t.Errorf("one-shot used codec %q", res.Codec)
	}
	out, outShape, err := fraz.Decompress(context.Background(), &stream)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(data) || len(outShape) != len(shape) {
		t.Fatalf("round trip returned %d values shape %v", len(out), outShape)
	}
	if diff := maxAbsDiff(data, out); diff > res.ErrorBound {
		t.Errorf("pointwise error %g exceeds tuned bound %g", diff, res.ErrorBound)
	}
}

// TestCompressInfeasible pins the typed-error contract: an unreachable
// target fails with errors.Is(err, fraz.ErrInfeasible), carries the closest
// observed configuration, and writes nothing.
func TestCompressInfeasible(t *testing.T) {
	data, shape := testField()
	var stream bytes.Buffer
	_, err := fraz.Compress(context.Background(), &stream, data, shape,
		fraz.Ratio(1e6), fraz.Tolerance(0.01), fraz.Regions(2), fraz.Seed(1))
	if !errors.Is(err, fraz.ErrInfeasible) {
		t.Fatalf("err = %v, want errors.Is ErrInfeasible", err)
	}
	var ie *fraz.InfeasibleError
	if !errors.As(err, &ie) {
		t.Fatalf("err = %T, want *fraz.InfeasibleError in the chain", err)
	}
	if ie.ClosestRatio <= 0 || ie.TargetRatio != 1e6 {
		t.Errorf("closest configuration not reported: %+v", ie)
	}
	if stream.Len() != 0 {
		t.Errorf("infeasible Compress wrote %d bytes", stream.Len())
	}
}

func TestTuneReportsInfeasibleAsData(t *testing.T) {
	data, shape := testField()
	c, err := fraz.New("sz:abs", fraz.Ratio(1e6), fraz.Tolerance(0.01), fraz.Regions(2), fraz.Seed(1))
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Tune(context.Background(), data, shape)
	if err != nil {
		t.Fatal(err)
	}
	if res.Feasible {
		t.Fatalf("a 1e6:1 target should not be feasible: %+v", res)
	}
	if res.Ratio <= 0 {
		t.Errorf("infeasible Tune should report the closest ratio, got %v", res.Ratio)
	}
	if !errors.Is(res.Err(), fraz.ErrInfeasible) {
		t.Errorf("TuneResult.Err() = %v, want ErrInfeasible", res.Err())
	}
}

func TestNewUnknownCodec(t *testing.T) {
	if _, err := fraz.New("nope:mode", fraz.Ratio(10)); !errors.Is(err, fraz.ErrUnknownCodec) {
		t.Errorf("err = %v, want ErrUnknownCodec", err)
	}
}

func TestDecompressErrors(t *testing.T) {
	if _, _, err := fraz.Decompress(context.Background(), strings.NewReader("not a container")); !errors.Is(err, fraz.ErrCorrupt) {
		t.Errorf("garbage stream: err = %v, want ErrCorrupt", err)
	}

	data, shape := testField()
	var stream bytes.Buffer
	if _, err := fraz.Compress(context.Background(), &stream, data, shape,
		fraz.Ratio(10), fraz.Tolerance(0.25), fraz.Regions(4), fraz.Seed(3)); err != nil {
		t.Fatal(err)
	}
	enc := stream.Bytes()

	if _, _, err := fraz.Decompress(context.Background(), bytes.NewReader(enc[:len(enc)/2])); !errors.Is(err, fraz.ErrCorrupt) {
		t.Errorf("truncated stream: err = %v, want ErrCorrupt", err)
	}

	// The codec name is not covered by the payload CRC, so flipping a byte
	// inside it yields a structurally valid stream naming a codec that does
	// not exist: offset 9 is the first name byte (after magic, version,
	// dtype, rank, and the name length).
	bad := append([]byte(nil), enc...)
	bad[9] = 'q'
	if _, _, err := fraz.Decompress(context.Background(), bytes.NewReader(bad)); !errors.Is(err, fraz.ErrUnknownCodec) {
		t.Errorf("unknown header codec: err = %v, want ErrUnknownCodec", err)
	}
}

func TestCompressRequiresTarget(t *testing.T) {
	c, err := fraz.New("sz:abs")
	if err != nil {
		t.Fatal(err)
	}
	data, shape := testField()
	if _, err := c.Compress(context.Background(), &bytes.Buffer{}, data, shape); err == nil || !strings.Contains(err.Error(), "Ratio") {
		t.Errorf("Compress without Ratio: err = %v, want a hint at the Ratio option", err)
	}
	if _, err := c.Tune(context.Background(), data, shape); err == nil {
		t.Errorf("Tune without Ratio should fail")
	}
}

func TestFixedBoundSkipsTuning(t *testing.T) {
	data, shape := testField()
	c, err := fraz.New("zfp:rate", fraz.FixedBound(8), fraz.Blocks(1))
	if err != nil {
		t.Fatal(err)
	}
	var stream bytes.Buffer
	res, err := c.Compress(context.Background(), &stream, data, shape)
	if err != nil {
		t.Fatal(err)
	}
	if res.ErrorBound != 8 || res.Evaluations != 0 {
		t.Errorf("FixedBound(8) result: %+v", res)
	}
	// 8 bits per 32-bit value ≈ 4:1 before stream overhead.
	if res.Ratio < 2 {
		t.Errorf("fixed-rate ratio = %v, want roughly 4:1", res.Ratio)
	}
	if out, _, err := fraz.Decompress(context.Background(), &stream); err != nil || len(out) != len(data) {
		t.Errorf("fixed-bound round trip: %d values, %v", len(out), err)
	}
}

// TestBoundReuse checks the client-level prediction carry: a second tune of
// the same data reuses the first call's feasible bound without retraining,
// unless ReuseBounds(false) opts out.
func TestBoundReuse(t *testing.T) {
	data, shape := testField()
	c, err := fraz.New("sz:abs", fraz.Ratio(10), fraz.Tolerance(0.25), fraz.Regions(4), fraz.Seed(3))
	if err != nil {
		t.Fatal(err)
	}
	first, err := c.Tune(context.Background(), data, shape)
	if err != nil {
		t.Fatal(err)
	}
	if !first.Feasible || first.UsedPrediction {
		t.Fatalf("first tune: %+v", first)
	}
	second, err := c.Tune(context.Background(), data, shape)
	if err != nil {
		t.Fatal(err)
	}
	if !second.UsedPrediction || second.ErrorBound != first.ErrorBound {
		t.Errorf("second tune should reuse the bound %g: %+v", first.ErrorBound, second)
	}

	noReuse, err := fraz.New("sz:abs", fraz.Ratio(10), fraz.Tolerance(0.25), fraz.Regions(4), fraz.Seed(3), fraz.ReuseBounds(false))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := noReuse.Tune(context.Background(), data, shape); err != nil {
		t.Fatal(err)
	}
	res, err := noReuse.Tune(context.Background(), data, shape)
	if err != nil {
		t.Fatal(err)
	}
	if res.UsedPrediction {
		t.Errorf("ReuseBounds(false) still reused a prediction")
	}
}

func TestTuneSeriesAndFields(t *testing.T) {
	data, shape := testField()
	series := fraz.Series{
		Name:  "synthetic/field",
		Steps: 3,
		At: func(i int) ([]float32, []int, error) {
			return data, shape, nil // a perfectly static series: steps 1+ reuse the bound
		},
	}
	c, err := fraz.New("sz:abs", fraz.Ratio(10), fraz.Tolerance(0.25), fraz.Regions(4), fraz.Seed(3))
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.TuneSeries(context.Background(), series)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Steps) != 3 || res.ConvergedSteps != 3 {
		t.Fatalf("series result: %+v", res)
	}
	if res.Retrains != 1 {
		t.Errorf("static series should retrain only on step 0, got %d retrains", res.Retrains)
	}

	fields, err := c.TuneFields(context.Background(), []fraz.Series{series, series})
	if err != nil {
		t.Fatal(err)
	}
	if len(fields) != 2 || fields[0].ConvergedSteps != 3 || fields[1].ConvergedSteps != 3 {
		t.Fatalf("fields result: %+v", fields)
	}
}

func TestShapeValidation(t *testing.T) {
	data, _ := testField()
	cases := [][]int{
		nil,             // no shape
		{},              // rank 0
		{1, 2, 3, 4, 5}, // rank 5
		{-16, 12, 10},   // negative extent
		{16, 12},        // product mismatch
	}
	for _, shape := range cases {
		if _, err := fraz.Compress(context.Background(), &bytes.Buffer{}, data, shape, fraz.Ratio(6)); err == nil {
			t.Errorf("shape %v should be rejected", shape)
		}
	}
}
