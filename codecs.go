package fraz

import "fraz/internal/pressio"

// CodecInfo describes one registered codec: its wire name (recorded in
// .fraz container headers) and the static capabilities callers select on.
// It is a plain value — codec discovery does not hand out compressor
// instances or any other internal type.
type CodecInfo struct {
	// Name identifies the codec, e.g. "sz:abs", and is what New and the
	// Codec option accept.
	Name string
	// BoundName names the codec's tunable scalar parameter, e.g. "absolute
	// error bound" or "bits per value".
	BoundName string
	// ErrorBounded reports whether the tuned parameter guarantees a
	// pointwise error bound on the reconstruction (false for the ZFP
	// fixed-rate baseline).
	ErrorBounded bool
	// Lossless marks codecs that reconstruct bit-exactly; their bound
	// parameter is ignored.
	Lossless bool
	// MinRank and MaxRank bound the data ranks the codec accepts (e.g. the
	// MGARD back end rejects 1-D data).
	MinRank, MaxRank int
}

// SupportsRank reports whether the codec accepts data of the given rank
// (len(shape)).
func (c CodecInfo) SupportsRank(rank int) bool {
	return rank >= c.MinRank && rank <= c.MaxRank
}

// Codecs lists every registered codec sorted by name. Use it to populate
// CLI help, or to select candidates by capability:
//
//	for _, c := range fraz.Codecs() {
//		if c.ErrorBounded && c.SupportsRank(3) { ... }
//	}
func Codecs() []CodecInfo {
	descs := pressio.Codecs()
	out := make([]CodecInfo, len(descs))
	for i, d := range descs {
		out[i] = codecInfo(d)
	}
	return out
}

// LookupCodec returns the descriptor registered under name and whether the
// name is known.
func LookupCodec(name string) (CodecInfo, bool) {
	d, ok := pressio.Lookup(name)
	if !ok {
		return CodecInfo{}, false
	}
	return codecInfo(d), true
}

func codecInfo(d pressio.Codec) CodecInfo {
	return CodecInfo{
		Name:         d.Name,
		BoundName:    d.Caps.BoundName,
		ErrorBounded: d.Caps.ErrorBounded,
		Lossless:     d.Caps.Lossless,
		MinRank:      d.Caps.MinRank,
		MaxRank:      d.Caps.MaxRank,
	}
}
