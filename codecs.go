package fraz

import (
	"fraz/internal/container"
	"fraz/internal/pressio"
)

// CodecAuto is the per-field automatic codec policy: instead of naming one
// compressor, a client (or Dataset) built with CodecAuto races every
// registered codec whose capability windows admit the field — rank and
// element-width windows, error-boundedness for fidelity-promising archives
// — on a sampled block, and seals with the winner. The race shares the
// client's evaluation cache, so candidate evaluations are never repeated
// across fields, codecs, or calls. Selection picks the best
// ratio-at-quality: for quality objectives (PSNR, SSIM, max-error) the
// in-band candidate with the highest compression ratio; for the fixed-ratio
// objective the in-band candidate with the best measured reconstruction
// PSNR at the target ratio. The chosen codec is recorded per field in the
// container header, so decompression never needs to know a selection
// happened.
const CodecAuto = "auto"

// CodecInfo describes one registered codec: its wire name (recorded in
// .fraz container headers) and the static capabilities callers select on.
// It is a plain value — codec discovery does not hand out compressor
// instances or any other internal type.
//
// The capability windows are what the CodecAuto policy pre-filters
// candidates with: a codec is only raced on a field whose rank lies in
// [MinRank, MaxRank] and whose element width is admitted by
// Float32/Float64.
type CodecInfo struct {
	// Name identifies the codec, e.g. "sz:abs", and is what New and the
	// Codec option accept.
	Name string
	// BoundName names the codec's tunable scalar parameter, e.g. "absolute
	// error bound" or "bits per value".
	BoundName string
	// ErrorBounded reports whether the tuned parameter guarantees a
	// pointwise error bound on the reconstruction (false for the ZFP
	// fixed-rate baseline).
	ErrorBounded bool
	// Lossless marks codecs that reconstruct bit-exactly; their bound
	// parameter is ignored.
	Lossless bool
	// MinRank and MaxRank bound the data ranks the codec accepts (e.g. the
	// MGARD back end rejects 1-D data). Ranks are len(shape).
	MinRank, MaxRank int
	// Float32 and Float64 report which element widths the codec accepts.
	// Every in-tree codec currently accepts both; the window exists so a
	// width-restricted back end filters out of CodecAuto races and
	// capability queries instead of failing at compression time.
	Float32, Float64 bool
	// FixedRate marks true fixed-rate codecs (currently frsz:rate): the
	// tunable parameter is the storage itself, so a FixedRatio objective is
	// satisfied directly — bits per value computed from the target ratio,
	// zero tuning evaluations — instead of searched (see
	// Objective.DirectlySatisfiable and CompressResult.Direct). Note
	// zfp:rate does not qualify: its rate parameter steers an embedded
	// coder whose output length still depends on the data.
	FixedRate bool
}

// SupportsRank reports whether the codec accepts data of the given rank
// (len(shape)).
func (c CodecInfo) SupportsRank(rank int) bool {
	return rank >= c.MinRank && rank <= c.MaxRank
}

// SupportsDType reports whether the codec accepts elements of the named
// width: "float32" or "float64" (the names DecompressResult.DType uses).
// Unknown names are unsupported.
func (c CodecInfo) SupportsDType(dtype string) bool {
	switch dtype {
	case container.Float32.String():
		return c.Float32
	case container.Float64.String():
		return c.Float64
	}
	return false
}

// Codecs lists every registered codec sorted by name. Use it to populate
// CLI help, or to select candidates by capability:
//
//	for _, c := range fraz.Codecs() {
//		if c.ErrorBounded && c.SupportsRank(3) && c.SupportsDType("float64") { ... }
//	}
//
// The CodecAuto policy name is not listed — it is a selection rule over
// these codecs, not a codec.
func Codecs() []CodecInfo {
	descs := pressio.Codecs()
	out := make([]CodecInfo, len(descs))
	for i, d := range descs {
		out[i] = codecInfo(d)
	}
	return out
}

// LookupCodec returns the descriptor registered under name and whether the
// name is known.
func LookupCodec(name string) (CodecInfo, bool) {
	d, ok := pressio.Lookup(name)
	if !ok {
		return CodecInfo{}, false
	}
	return codecInfo(d), true
}

func codecInfo(d pressio.Codec) CodecInfo {
	return CodecInfo{
		Name:         d.Name,
		BoundName:    d.Caps.BoundName,
		ErrorBounded: d.Caps.ErrorBounded,
		Lossless:     d.Caps.Lossless,
		MinRank:      d.Caps.MinRank,
		MaxRank:      d.Caps.MaxRank,
		Float32:      d.Caps.Float32,
		Float64:      d.Caps.Float64,
		FixedRate:    d.Caps.FixedRate,
	}
}
