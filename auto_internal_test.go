package fraz

import "testing"

// The race scores candidates on a sampled block, so its winner can miss the
// acceptance band on the full field; demoteWinner is the fallback that
// promotes the runner-up (see compressBuffer and TuneT).
func TestDemoteWinner(t *testing.T) {
	sel := &AutoSelection{
		Codec: "b",
		Candidates: []AutoCandidate{
			{Codec: "a", Feasible: true, Score: 5, ErrorBound: 0.1},
			{Codec: "b", Feasible: true, Score: 9, ErrorBound: 0.2},
			{Codec: "c", Feasible: true, Score: 7, ErrorBound: 0.3},
			{Codec: "d", Skipped: "rank window"},
		},
	}
	cand, ok := sel.demoteWinner("missed the band")
	if !ok || cand.Codec != "c" || sel.Codec != "c" {
		t.Fatalf("demoteWinner = %+v ok=%v sel=%s, want promotion of c", cand, ok, sel.Codec)
	}
	if got := sel.Candidates[1]; got.Skipped != "missed the band" || got.Feasible {
		t.Errorf("old winner not demoted: %+v", got)
	}

	cand, ok = sel.demoteWinner("missed again")
	if !ok || cand.Codec != "a" || sel.Codec != "a" {
		t.Fatalf("second demotion = %+v ok=%v sel=%s, want promotion of a", cand, ok, sel.Codec)
	}

	if _, ok = sel.demoteWinner("last one failed"); ok {
		t.Fatal("demoteWinner with no raced candidate left should report !ok")
	}
	for _, c := range sel.Candidates {
		if c.Skipped == "" {
			t.Errorf("candidate %s still unskipped after exhaustion", c.Codec)
		}
	}
}
