package fraz_test

import (
	"sort"
	"testing"

	"fraz"
)

func TestCodecsDiscovery(t *testing.T) {
	infos := fraz.Codecs()
	if len(infos) == 0 {
		t.Fatal("no codecs registered")
	}
	if !sort.SliceIsSorted(infos, func(i, j int) bool { return infos[i].Name < infos[j].Name }) {
		t.Errorf("Codecs() not sorted by name")
	}
	byName := map[string]fraz.CodecInfo{}
	for _, ci := range infos {
		if ci.Name == "" || ci.BoundName == "" || ci.MinRank < 1 || ci.MaxRank < ci.MinRank {
			t.Errorf("implausible codec descriptor: %+v", ci)
		}
		byName[ci.Name] = ci
	}
	sz, ok := byName["sz:abs"]
	if !ok || !sz.ErrorBounded || sz.Lossless {
		t.Errorf("sz:abs descriptor: %+v (ok=%v)", sz, ok)
	}
	if rate, ok := byName["zfp:rate"]; !ok || rate.ErrorBounded {
		t.Errorf("zfp:rate must not claim an error bound: %+v", rate)
	}
}

// TestCodecCapabilityWindows pins the public dtype/rank window contract:
// every in-tree codec declares its element widths, SupportsDType answers by
// the names DecompressResult.DType uses, and the CodecAuto policy name is
// not itself listed as a codec.
func TestCodecCapabilityWindows(t *testing.T) {
	for _, ci := range fraz.Codecs() {
		if ci.Name == fraz.CodecAuto {
			t.Errorf("Codecs() lists the %s policy as a codec", fraz.CodecAuto)
		}
		if !ci.Float32 && !ci.Float64 {
			t.Errorf("%s admits no element width at all: %+v", ci.Name, ci)
		}
		if ci.SupportsDType("float32") != ci.Float32 || ci.SupportsDType("float64") != ci.Float64 {
			t.Errorf("%s: SupportsDType disagrees with the Float32/Float64 fields", ci.Name)
		}
		if ci.SupportsDType("int8") || ci.SupportsDType("") {
			t.Errorf("%s: SupportsDType accepts an unknown dtype name", ci.Name)
		}
	}
	if _, ok := fraz.LookupCodec(fraz.CodecAuto); ok {
		t.Errorf("LookupCodec(%q) resolved — the policy must not masquerade as a codec", fraz.CodecAuto)
	}
}

func TestLookupCodec(t *testing.T) {
	ci, ok := fraz.LookupCodec("mgard:abs")
	if !ok {
		t.Fatal("mgard:abs not registered")
	}
	if ci.SupportsRank(1) || !ci.SupportsRank(2) || !ci.SupportsRank(3) {
		t.Errorf("mgard:abs rank support: %+v", ci)
	}
	if _, ok := fraz.LookupCodec("nope:mode"); ok {
		t.Errorf("LookupCodec accepted an unknown name")
	}
}
